//! The 128-bit FaRMv2 object header (Figure 7).
//!
//! The header of a head version packs, into two 64-bit words:
//!
//! * word 0: the lock bit `L`, the allocated bit `A`, the 8-bit install
//!   counter `CL` and the 53-bit write timestamp `TS`;
//! * word 1: the old-version pointer `OVP` (or a sentinel when the object has
//!   no old versions).
//!
//! The first word is manipulated with compare-and-swap so that locking and
//! validation have exactly the atomicity the real system gets from CPU/NIC
//! atomics on the primary.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::addr::OldAddr;

const LOCK_BIT: u64 = 1 << 63;
const ALLOC_BIT: u64 = 1 << 62;
/// Tombstone bit: the object was freed at timestamp `TS`, but the slot still
/// anchors the old-version chain so snapshot readers below `TS` can keep
/// reading history. Tombstoned slots are reclaimed by the GC sweep once the
/// cluster-wide safe point passes `TS` (multi-version mode only).
const TOMB_BIT: u64 = 1 << 61;
const CL_SHIFT: u32 = 53;
const CL_MASK: u64 = 0xFF << CL_SHIFT;
const TS_MASK: u64 = (1 << 53) - 1;
/// Sentinel in word 1 meaning "no old version".
const NO_OVP: u64 = u64::MAX;

/// A decoded view of the header at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderSnapshot {
    /// Lock bit: set while a committing transaction holds the object locked.
    pub locked: bool,
    /// Allocated bit: clear for free slots.
    pub allocated: bool,
    /// Tombstone bit: the object was freed at `ts` but still anchors its
    /// old-version chain for snapshot readers (multi-version mode).
    pub tombstone: bool,
    /// Install counter (wraps at 256); incremented on every install.
    pub cl: u8,
    /// Write timestamp of the last transaction that installed this version.
    pub ts: u64,
    /// Pointer to the newest old version, if any.
    pub ovp: Option<OldAddr>,
}

/// Outcome of a lock attempt (see [`ObjectHeader::try_lock_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderLock {
    /// The lock was acquired and the version matched.
    Acquired,
    /// The object is already locked by another transaction.
    AlreadyLocked,
    /// The object's version no longer matches the expected timestamp.
    VersionMismatch {
        /// The timestamp currently in the header.
        current: u64,
    },
    /// The object is not allocated (freed concurrently).
    NotAllocated,
}

/// The two-word atomic object header.
#[derive(Debug, Default)]
pub struct ObjectHeader {
    word0: AtomicU64,
    ovp: AtomicU64,
}

impl ObjectHeader {
    /// Creates a header for a free (unallocated) slot.
    pub fn new_free() -> Self {
        ObjectHeader {
            word0: AtomicU64::new(0),
            ovp: AtomicU64::new(NO_OVP),
        }
    }

    /// Decodes the current header.
    #[inline]
    pub fn snapshot(&self) -> HeaderSnapshot {
        let w0 = self.word0.load(Ordering::Acquire);
        let ovp_raw = self.ovp.load(Ordering::Acquire);
        HeaderSnapshot {
            locked: w0 & LOCK_BIT != 0,
            allocated: w0 & ALLOC_BIT != 0,
            tombstone: w0 & TOMB_BIT != 0,
            cl: ((w0 & CL_MASK) >> CL_SHIFT) as u8,
            ts: w0 & TS_MASK,
            ovp: if ovp_raw == NO_OVP {
                None
            } else {
                Some(OldAddr::unpack(ovp_raw))
            },
        }
    }

    /// Marks the slot allocated with timestamp `ts` and no old versions.
    /// Used when the allocating transaction commits.
    pub fn initialize_allocated(&self, ts: u64) {
        debug_assert!(ts <= TS_MASK);
        self.ovp.store(NO_OVP, Ordering::Release);
        self.word0
            .store(ALLOC_BIT | (ts & TS_MASK), Ordering::Release);
    }

    /// Clears the allocated bit (object freed) and drops the old-version
    /// pointer.
    pub fn mark_free(&self) {
        self.ovp.store(NO_OVP, Ordering::Release);
        self.word0.store(0, Ordering::Release);
    }

    /// Marks the slot as a tombstone at `ts` **without** the lock
    /// discipline: the replica-side application of a replicated free.
    /// Replicas carry no commit locks — mutual exclusion comes from the
    /// per-destination log lock — and the tombstone must *retain* the
    /// free's timestamp so an out-of-order delivery of an older write
    /// record cannot resurrect the object.
    pub fn mark_tombstone(&self, ts: u64) {
        debug_assert!(ts <= TS_MASK);
        self.ovp.store(NO_OVP, Ordering::Release);
        self.word0
            .store(ALLOC_BIT | TOMB_BIT | (ts & TS_MASK), Ordering::Release);
    }

    /// Attempts to lock the object on behalf of a transaction that read it at
    /// timestamp `expected_ts`. Succeeds only if the object is allocated,
    /// unlocked, and its timestamp still equals `expected_ts` — the combined
    /// "lock + version check" of the LOCK phase (Figure 3).
    pub fn try_lock_at(&self, expected_ts: u64) -> HeaderLock {
        let cur = self.word0.load(Ordering::Acquire);
        if cur & ALLOC_BIT == 0 {
            return HeaderLock::NotAllocated;
        }
        if cur & LOCK_BIT != 0 {
            return HeaderLock::AlreadyLocked;
        }
        let cur_ts = cur & TS_MASK;
        if cur_ts != expected_ts {
            return HeaderLock::VersionMismatch { current: cur_ts };
        }
        let target = cur | LOCK_BIT;
        match self
            .word0
            .compare_exchange(cur, target, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => HeaderLock::Acquired,
            Err(now) => {
                if now & LOCK_BIT != 0 {
                    HeaderLock::AlreadyLocked
                } else if now & ALLOC_BIT == 0 {
                    HeaderLock::NotAllocated
                } else {
                    HeaderLock::VersionMismatch {
                        current: now & TS_MASK,
                    }
                }
            }
        }
    }

    /// Locks the object unconditionally (used for allocation of fresh slots
    /// whose timestamp is still zero, and in recovery).
    /// Returns `false` if it was already locked.
    pub fn try_lock_any(&self) -> bool {
        let cur = self.word0.load(Ordering::Acquire);
        if cur & LOCK_BIT != 0 {
            return false;
        }
        self.word0
            .compare_exchange(cur, cur | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Releases the lock without changing the version (abort path).
    pub fn unlock(&self) {
        self.word0.fetch_and(!LOCK_BIT, Ordering::AcqRel);
    }

    /// Installs a new version: sets the timestamp to `new_ts`, bumps the
    /// install counter, stores the new old-version pointer and releases the
    /// lock. Must only be called while holding the lock.
    pub fn install_and_unlock(&self, new_ts: u64, ovp: Option<OldAddr>) {
        debug_assert!(new_ts <= TS_MASK);
        let cur = self.word0.load(Ordering::Acquire);
        debug_assert!(cur & LOCK_BIT != 0, "install without holding the lock");
        let cl = ((cur & CL_MASK) >> CL_SHIFT) as u8;
        let new_cl = cl.wrapping_add(1);
        self.ovp
            .store(ovp.map(OldAddr::pack).unwrap_or(NO_OVP), Ordering::Release);
        let new_word = ALLOC_BIT | ((new_cl as u64) << CL_SHIFT) | (new_ts & TS_MASK);
        self.word0.store(new_word, Ordering::Release);
    }

    /// Installs a **tombstone**: the object is freed at `new_ts`, but the
    /// slot stays allocated (with the tombstone bit set) so the old-version
    /// pointer keeps anchoring history for snapshot readers below `new_ts`.
    /// Must only be called while holding the lock.
    pub fn install_tombstone_and_unlock(&self, new_ts: u64, ovp: Option<OldAddr>) {
        debug_assert!(new_ts <= TS_MASK);
        let cur = self.word0.load(Ordering::Acquire);
        debug_assert!(
            cur & LOCK_BIT != 0,
            "tombstone install without holding the lock"
        );
        let cl = ((cur & CL_MASK) >> CL_SHIFT) as u8;
        let new_cl = cl.wrapping_add(1);
        self.ovp
            .store(ovp.map(OldAddr::pack).unwrap_or(NO_OVP), Ordering::Release);
        let new_word = ALLOC_BIT | TOMB_BIT | ((new_cl as u64) << CL_SHIFT) | (new_ts & TS_MASK);
        self.word0.store(new_word, Ordering::Release);
    }

    /// Updates only the old-version pointer (used when truncating history).
    pub fn set_ovp(&self, ovp: Option<OldAddr>) {
        self.ovp
            .store(ovp.map(OldAddr::pack).unwrap_or(NO_OVP), Ordering::Release);
    }

    /// Whether the header is currently locked.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.word0.load(Ordering::Acquire) & LOCK_BIT != 0
    }

    /// Current timestamp (only meaningful for allocated slots).
    #[inline]
    pub fn ts(&self) -> u64 {
        self.word0.load(Ordering::Acquire) & TS_MASK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BlockId;

    #[test]
    fn free_header_is_unallocated_and_unlocked() {
        let h = ObjectHeader::new_free();
        let s = h.snapshot();
        assert!(!s.locked);
        assert!(!s.allocated);
        assert_eq!(s.ts, 0);
        assert_eq!(s.ovp, None);
    }

    #[test]
    fn initialize_and_snapshot() {
        let h = ObjectHeader::new_free();
        h.initialize_allocated(42);
        let s = h.snapshot();
        assert!(s.allocated);
        assert!(!s.locked);
        assert_eq!(s.ts, 42);
    }

    #[test]
    fn lock_requires_matching_version() {
        let h = ObjectHeader::new_free();
        h.initialize_allocated(10);
        assert_eq!(
            h.try_lock_at(11),
            HeaderLock::VersionMismatch { current: 10 }
        );
        assert_eq!(h.try_lock_at(10), HeaderLock::Acquired);
        assert_eq!(h.try_lock_at(10), HeaderLock::AlreadyLocked);
        h.unlock();
        assert_eq!(h.try_lock_at(10), HeaderLock::Acquired);
    }

    #[test]
    fn lock_fails_on_unallocated() {
        let h = ObjectHeader::new_free();
        assert_eq!(h.try_lock_at(0), HeaderLock::NotAllocated);
    }

    #[test]
    fn install_bumps_counter_sets_ts_and_unlocks() {
        let h = ObjectHeader::new_free();
        h.initialize_allocated(5);
        assert_eq!(h.try_lock_at(5), HeaderLock::Acquired);
        let ovp = OldAddr {
            block: BlockId(3),
            index: 7,
            generation: 1,
        };
        h.install_and_unlock(9, Some(ovp));
        let s = h.snapshot();
        assert!(!s.locked);
        assert!(s.allocated);
        assert_eq!(s.ts, 9);
        assert_eq!(s.cl, 1);
        assert_eq!(s.ovp, Some(ovp));
    }

    #[test]
    fn mark_free_clears_everything() {
        let h = ObjectHeader::new_free();
        h.initialize_allocated(5);
        h.mark_free();
        let s = h.snapshot();
        assert!(!s.allocated);
        assert_eq!(s.ovp, None);
    }

    #[test]
    fn cl_counter_wraps() {
        let h = ObjectHeader::new_free();
        h.initialize_allocated(0);
        for i in 1..=300u64 {
            assert!(h.try_lock_any());
            h.install_and_unlock(i, None);
        }
        assert_eq!(h.snapshot().cl, (300 % 256) as u8);
    }

    #[test]
    fn concurrent_lockers_only_one_wins() {
        use std::sync::Arc;
        let h = Arc::new(ObjectHeader::new_free());
        h.initialize_allocated(1);
        let winners: usize = (0..8)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    matches!(h.try_lock_at(1), HeaderLock::Acquired) as usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .sum();
        assert_eq!(winners, 1);
    }

    #[test]
    fn tombstone_install_keeps_slot_allocated_and_chain_anchored() {
        let h = ObjectHeader::new_free();
        h.initialize_allocated(5);
        assert!(!h.snapshot().tombstone);
        assert_eq!(h.try_lock_at(5), HeaderLock::Acquired);
        let ovp = OldAddr {
            block: BlockId(1),
            index: 4,
            generation: 0,
        };
        h.install_tombstone_and_unlock(9, Some(ovp));
        let s = h.snapshot();
        assert!(s.allocated, "tombstone keeps the slot allocated");
        assert!(s.tombstone);
        assert!(!s.locked);
        assert_eq!(s.ts, 9);
        assert_eq!(s.ovp, Some(ovp));
        // A writer that read the pre-free version cannot lock the tombstone.
        assert_eq!(h.try_lock_at(5), HeaderLock::VersionMismatch { current: 9 });
        // mark_free (the GC sweep) clears the tombstone.
        h.mark_free();
        assert!(!h.snapshot().tombstone);
        assert!(!h.snapshot().allocated);
    }

    #[test]
    fn set_ovp_only_changes_pointer() {
        let h = ObjectHeader::new_free();
        h.initialize_allocated(5);
        h.set_ovp(Some(OldAddr {
            block: BlockId(1),
            index: 2,
            generation: 0,
        }));
        let s = h.snapshot();
        assert_eq!(s.ts, 5);
        assert!(s.ovp.is_some());
        h.set_ovp(None);
        assert_eq!(h.snapshot().ovp, None);
    }
}
