//! Slabs: fixed-size-class allocation areas within a region (Section 4.8).

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::bitmap::FreeBitmap;
use crate::object::ObjectSlot;

/// Errors from slab operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabError {
    /// The slab has no free slots.
    Full,
    /// The slot index is out of range for this slab.
    BadSlot,
    /// The slab cannot be reused because it still has allocated objects.
    NotEmpty,
}

impl std::fmt::Display for SlabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlabError::Full => write!(f, "slab full"),
            SlabError::BadSlot => write!(f, "slot index out of range"),
            SlabError::NotEmpty => write!(f, "slab still has allocated objects"),
        }
    }
}

impl std::error::Error for SlabError {}

struct SlabInner {
    object_size: usize,
    slots: Vec<Arc<ObjectSlot>>,
}

/// A slab: `capacity` object slots of a single size class, owned (in the
/// paper) by one thread of the primary's machine. All objects in a slab have
/// the same size, which allows the compact free bitmap.
pub struct Slab {
    inner: RwLock<SlabInner>,
    bitmap: Mutex<FreeBitmap>,
}

impl Slab {
    /// Creates a slab of `capacity` slots of `object_size` bytes each.
    pub fn new(object_size: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "slab capacity must be positive");
        let slots = (0..capacity)
            .map(|_| Arc::new(ObjectSlot::new_free()))
            .collect();
        Slab {
            inner: RwLock::new(SlabInner { object_size, slots }),
            bitmap: Mutex::new(FreeBitmap::new_all_free(capacity)),
        }
    }

    /// The size class of objects in this slab.
    pub fn object_size(&self) -> usize {
        self.inner.read().object_size
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.read().slots.len()
    }

    /// Number of free slots.
    pub fn free_slots(&self) -> usize {
        self.bitmap.lock().free_count()
    }

    /// Whether every slot is free (candidate for slab reuse).
    pub fn is_empty(&self) -> bool {
        self.bitmap.lock().all_free()
    }

    /// Allocates a slot, returning its index.
    pub fn allocate(&self) -> Result<u32, SlabError> {
        self.bitmap
            .lock()
            .allocate()
            .map(|s| s as u32)
            .ok_or(SlabError::Full)
    }

    /// Frees a slot index. The caller is responsible for having cleared the
    /// slot's header first (at commit of the freeing transaction).
    pub fn free(&self, slot: u32) -> Result<(), SlabError> {
        let mut bm = self.bitmap.lock();
        if (slot as usize) >= bm.capacity() {
            return Err(SlabError::BadSlot);
        }
        bm.free(slot as usize);
        Ok(())
    }

    /// Returns the slot at `index`.
    pub fn slot(&self, index: u32) -> Result<Arc<ObjectSlot>, SlabError> {
        let inner = self.inner.read();
        inner
            .slots
            .get(index as usize)
            .cloned()
            .ok_or(SlabError::BadSlot)
    }

    /// Rebuilds the free bitmap by scanning object headers. This is what a
    /// backup does when it is promoted to primary: the bitmap is only
    /// maintained at the primary, so the new primary reconstructs it from the
    /// allocated bits in the headers (Section 4.8).
    pub fn rebuild_bitmap_from_headers(&self) {
        let inner = self.inner.read();
        let mut bm = FreeBitmap::new_all_free(inner.slots.len());
        for (i, slot) in inner.slots.iter().enumerate() {
            if slot.header_snapshot().allocated {
                bm.mark_allocated(i);
            }
        }
        *self.bitmap.lock() = bm;
    }

    /// Reuses the (fully free) slab with a new object size: all slots are
    /// recreated. The transaction engine must only call this after the GC
    /// safe point has passed the time at which the slab was observed empty
    /// (Figure 10) — that ordering is enforced one level up.
    pub fn reuse_as(&self, new_object_size: usize, new_capacity: usize) -> Result<(), SlabError> {
        let mut bm = self.bitmap.lock();
        if !bm.all_free() {
            return Err(SlabError::NotEmpty);
        }
        let mut inner = self.inner.write();
        inner.object_size = new_object_size;
        inner.slots = (0..new_capacity)
            .map(|_| Arc::new(ObjectSlot::new_free()))
            .collect();
        *bm = FreeBitmap::new_all_free(new_capacity);
        Ok(())
    }
}

impl std::fmt::Debug for Slab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("object_size", &self.object_size())
            .field("capacity", &self.capacity())
            .field("free", &self.free_slots())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn allocate_and_free_cycle() {
        let slab = Slab::new(64, 8);
        assert_eq!(slab.capacity(), 8);
        assert_eq!(slab.object_size(), 64);
        let a = slab.allocate().unwrap();
        let b = slab.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(slab.free_slots(), 6);
        slab.free(a).unwrap();
        assert_eq!(slab.free_slots(), 7);
    }

    #[test]
    fn full_slab_reports_error() {
        let slab = Slab::new(64, 2);
        slab.allocate().unwrap();
        slab.allocate().unwrap();
        assert_eq!(slab.allocate(), Err(SlabError::Full));
    }

    #[test]
    fn bad_slot_indices_are_rejected() {
        let slab = Slab::new(64, 2);
        assert_eq!(slab.free(5), Err(SlabError::BadSlot));
        assert!(slab.slot(5).is_err());
    }

    #[test]
    fn reuse_requires_empty() {
        let slab = Slab::new(64, 4);
        let s = slab.allocate().unwrap();
        assert_eq!(slab.reuse_as(128, 2), Err(SlabError::NotEmpty));
        slab.free(s).unwrap();
        slab.reuse_as(128, 2).unwrap();
        assert_eq!(slab.object_size(), 128);
        assert_eq!(slab.capacity(), 2);
        assert!(slab.is_empty());
    }

    #[test]
    fn rebuild_bitmap_matches_headers() {
        let slab = Slab::new(64, 4);
        // Simulate a backup's state: slots 1 and 3 hold allocated objects,
        // but the (primary-only) bitmap was never maintained here.
        slab.slot(1)
            .unwrap()
            .initialize(5, Bytes::from_static(b"a"));
        slab.slot(3)
            .unwrap()
            .initialize(6, Bytes::from_static(b"b"));
        slab.rebuild_bitmap_from_headers();
        assert_eq!(slab.free_slots(), 2);
        let x = slab.allocate().unwrap();
        let y = slab.allocate().unwrap();
        let mut got = vec![x, y];
        got.sort();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn slots_are_shared_references() {
        let slab = Slab::new(64, 2);
        let idx = slab.allocate().unwrap();
        let s1 = slab.slot(idx).unwrap();
        let s2 = slab.slot(idx).unwrap();
        s1.initialize(1, Bytes::from_static(b"shared"));
        assert_eq!(&s2.raw_data()[..], b"shared");
    }
}
