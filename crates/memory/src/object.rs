//! Object slots: a header plus a payload, with atomic-snapshot reads.

use bytes::Bytes;
use parking_lot::RwLock;

use crate::addr::OldAddr;
use crate::header::{HeaderLock, HeaderSnapshot, ObjectHeader};

/// Result of a consistent (single-version-atomic) read of a head version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistentRead {
    /// The object is allocated and was read atomically at this version.
    Value {
        /// Write timestamp of the version read.
        ts: u64,
        /// Old-version pointer at the time of the read.
        ovp: Option<OldAddr>,
        /// Payload of the version read (cheaply cloneable).
        data: Bytes,
    },
    /// The object was locked by a committing transaction; the reader must
    /// retry or treat the read as conflicting (the paper's readers observe
    /// the lock bit in the RDMA-read header).
    Locked,
    /// The object was freed at timestamp `ts`, but the slot still anchors its
    /// old-version chain (multi-version mode): readers with a snapshot below
    /// `ts` follow `ovp`; readers at or above `ts` observe the object as
    /// freed.
    Tombstone {
        /// Timestamp of the freeing transaction.
        ts: u64,
        /// Old-version chain carrying the pre-free history.
        ovp: Option<OldAddr>,
    },
    /// The slot is not allocated.
    NotAllocated,
}

/// Result of a lock attempt on a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// Lock acquired; the previous version matched.
    Acquired,
    /// The object is locked by another transaction.
    Conflict,
    /// The version changed since the transaction read the object.
    VersionChanged {
        /// The timestamp currently installed.
        current: u64,
    },
    /// The object is not allocated.
    NotAllocated,
}

/// Result of installing a new version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallOutcome {
    /// The new version was installed and the object unlocked.
    Installed,
}

/// One object slot: 128-bit header + payload.
///
/// The payload is guarded by a reader/writer lock standing in for the
/// paper's per-cache-line `CL` version scheme (see the crate-level fidelity
/// note); the header is atomic and is what locking and validation operate on.
#[derive(Debug, Default)]
pub struct ObjectSlot {
    header: ObjectHeader,
    data: RwLock<Bytes>,
}

impl ObjectSlot {
    /// Creates a free slot.
    pub fn new_free() -> Self {
        ObjectSlot {
            header: ObjectHeader::new_free(),
            data: RwLock::new(Bytes::new()),
        }
    }

    /// Direct access to the header (validation re-reads, recovery scans).
    pub fn header(&self) -> &ObjectHeader {
        &self.header
    }

    /// Decoded header snapshot.
    pub fn header_snapshot(&self) -> HeaderSnapshot {
        self.header.snapshot()
    }

    /// Reads the head version atomically: header and payload belong to the
    /// same installed version. Mirrors a one-sided RDMA read of the object.
    pub fn read_consistent(&self) -> ConsistentRead {
        loop {
            let before = self.header.snapshot();
            if !before.allocated {
                return ConsistentRead::NotAllocated;
            }
            if before.locked {
                return ConsistentRead::Locked;
            }
            if before.tombstone {
                return ConsistentRead::Tombstone {
                    ts: before.ts,
                    ovp: before.ovp,
                };
            }
            let data = self.data.read().clone();
            let after = self.header.snapshot();
            if !after.locked && after.ts == before.ts && after.cl == before.cl {
                return ConsistentRead::Value {
                    ts: before.ts,
                    ovp: before.ovp,
                    data,
                };
            }
            // An install raced with our read; retry (the NIC-level read would
            // observe a cache-line version mismatch and be retried the same
            // way).
            std::hint::spin_loop();
        }
    }

    /// Attempts to lock the object for a transaction that read it at
    /// `expected_ts` (LOCK phase of Figure 3).
    pub fn try_lock_at(&self, expected_ts: u64) -> LockOutcome {
        match self.header.try_lock_at(expected_ts) {
            HeaderLock::Acquired => LockOutcome::Acquired,
            HeaderLock::AlreadyLocked => LockOutcome::Conflict,
            HeaderLock::VersionMismatch { current } => LockOutcome::VersionChanged { current },
            HeaderLock::NotAllocated => LockOutcome::NotAllocated,
        }
    }

    /// Locks a freshly-allocated slot regardless of its version. Returns
    /// `false` on conflict.
    pub fn try_lock_new(&self) -> bool {
        self.header.try_lock_any()
    }

    /// Locks an **allocated, live** object regardless of its version — the
    /// LOCK-phase primitive behind blind writes (updates without a prior
    /// read): there is no read dependency to version-check, so only
    /// liveness and lock availability matter. Freed or never-allocated
    /// slots report [`LockOutcome::NotAllocated`].
    pub fn try_lock_blind(&self) -> LockOutcome {
        let h = self.header.snapshot();
        if !h.allocated || h.tombstone {
            return LockOutcome::NotAllocated;
        }
        if !self.header.try_lock_any() {
            return LockOutcome::Conflict;
        }
        // Re-check under the lock: a free may have raced the liveness
        // snapshot above (the version-checked path is immune to this — the
        // free would have changed the timestamp).
        let h = self.header.snapshot();
        if !h.allocated || h.tombstone {
            self.header.unlock();
            return LockOutcome::NotAllocated;
        }
        LockOutcome::Acquired
    }

    /// Releases the lock without installing (abort path of the coordinator).
    pub fn unlock(&self) {
        self.header.unlock();
    }

    /// Installs a new version while holding the lock: replaces the payload,
    /// sets the timestamp and old-version pointer, and unlocks.
    pub fn install_and_unlock(
        &self,
        new_ts: u64,
        data: Bytes,
        ovp: Option<OldAddr>,
    ) -> InstallOutcome {
        {
            let mut guard = self.data.write();
            *guard = data;
        }
        self.header.install_and_unlock(new_ts, ovp);
        InstallOutcome::Installed
    }

    /// Installs a tombstone while holding the lock: the payload is dropped,
    /// the slot stays allocated with the tombstone bit set and `ovp` keeps
    /// anchoring the pre-free history (multi-version frees).
    pub fn install_tombstone_and_unlock(&self, new_ts: u64, ovp: Option<OldAddr>) {
        {
            let mut guard = self.data.write();
            *guard = Bytes::new();
        }
        self.header.install_tombstone_and_unlock(new_ts, ovp);
    }

    /// Initializes the slot as a newly-allocated object with payload `data`
    /// and write timestamp `ts` (commit of an allocating transaction).
    pub fn initialize(&self, ts: u64, data: Bytes) {
        {
            let mut guard = self.data.write();
            *guard = data;
        }
        self.header.initialize_allocated(ts);
    }

    /// Marks the slot free and clears the payload.
    pub fn clear(&self) {
        self.header.mark_free();
        let mut guard = self.data.write();
        *guard = Bytes::new();
    }

    /// Replica-side free: records the free as a tombstone **carrying its
    /// timestamp** (instead of zeroing the header) so a later out-of-order
    /// delivery of an *older* write record cannot resurrect the object.
    /// Replicas have no commit locks; callers serialize through the
    /// replica's log lock.
    pub fn mark_replica_tombstone(&self, ts: u64) {
        {
            let mut guard = self.data.write();
            *guard = Bytes::new();
        }
        self.header.mark_tombstone(ts);
    }

    /// Raw payload clone regardless of header state (backup application and
    /// recovery paths that operate below the transaction protocol).
    pub fn raw_data(&self) -> Bytes {
        self.data.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_of_free_slot_is_not_allocated() {
        let s = ObjectSlot::new_free();
        assert_eq!(s.read_consistent(), ConsistentRead::NotAllocated);
    }

    #[test]
    fn initialize_then_read() {
        let s = ObjectSlot::new_free();
        s.initialize(7, Bytes::from_static(b"hello"));
        match s.read_consistent() {
            ConsistentRead::Value { ts, data, ovp } => {
                assert_eq!(ts, 7);
                assert_eq!(&data[..], b"hello");
                assert_eq!(ovp, None);
            }
            other => panic!("unexpected read result: {other:?}"),
        }
    }

    #[test]
    fn locked_object_reports_locked_to_readers() {
        let s = ObjectSlot::new_free();
        s.initialize(1, Bytes::from_static(b"x"));
        assert_eq!(s.try_lock_at(1), LockOutcome::Acquired);
        assert_eq!(s.read_consistent(), ConsistentRead::Locked);
        s.unlock();
        assert!(matches!(s.read_consistent(), ConsistentRead::Value { .. }));
    }

    #[test]
    fn lock_version_check() {
        let s = ObjectSlot::new_free();
        s.initialize(5, Bytes::from_static(b"v5"));
        assert_eq!(s.try_lock_at(4), LockOutcome::VersionChanged { current: 5 });
        assert_eq!(s.try_lock_at(5), LockOutcome::Acquired);
        assert_eq!(s.try_lock_at(5), LockOutcome::Conflict);
    }

    #[test]
    fn install_replaces_data_and_version() {
        let s = ObjectSlot::new_free();
        s.initialize(1, Bytes::from_static(b"old"));
        assert_eq!(s.try_lock_at(1), LockOutcome::Acquired);
        s.install_and_unlock(9, Bytes::from_static(b"new"), None);
        match s.read_consistent() {
            ConsistentRead::Value { ts, data, .. } => {
                assert_eq!(ts, 9);
                assert_eq!(&data[..], b"new");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn tombstone_reports_free_time_and_chain() {
        use crate::addr::BlockId;
        let s = ObjectSlot::new_free();
        s.initialize(3, Bytes::from_static(b"live"));
        assert_eq!(s.try_lock_at(3), LockOutcome::Acquired);
        let ovp = OldAddr {
            block: BlockId(0),
            index: 1,
            generation: 0,
        };
        s.install_tombstone_and_unlock(8, Some(ovp));
        match s.read_consistent() {
            ConsistentRead::Tombstone { ts, ovp: chain } => {
                assert_eq!(ts, 8);
                assert_eq!(chain, Some(ovp));
            }
            other => panic!("expected tombstone, got {other:?}"),
        }
        assert!(s.raw_data().is_empty());
        s.clear();
        assert_eq!(s.read_consistent(), ConsistentRead::NotAllocated);
    }

    #[test]
    fn clear_frees_slot() {
        let s = ObjectSlot::new_free();
        s.initialize(1, Bytes::from_static(b"data"));
        s.clear();
        assert_eq!(s.read_consistent(), ConsistentRead::NotAllocated);
        assert!(s.raw_data().is_empty());
    }

    #[test]
    fn concurrent_reads_and_installs_never_tear() {
        use std::sync::Arc;
        let s = Arc::new(ObjectSlot::new_free());
        // Payloads are (ts, ts, ts, ...) so a torn read is detectable.
        s.initialize(0, Bytes::from(vec![0u8; 32]));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for ts in 1..=500u64 {
                    assert!(s.try_lock_new());
                    let byte = (ts % 251) as u8;
                    s.install_and_unlock(ts, Bytes::from(vec![byte; 32]), None);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        match s.read_consistent() {
                            ConsistentRead::Value { ts, data, .. } => {
                                let expect = (ts % 251) as u8;
                                assert!(data.iter().all(|&b| b == expect), "torn read at ts {ts}");
                            }
                            ConsistentRead::Locked => {}
                            ConsistentRead::Tombstone { .. } => panic!("object tombstoned"),
                            ConsistentRead::NotAllocated => panic!("object vanished"),
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
