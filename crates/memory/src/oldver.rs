//! Old-version storage: thread-local block allocation and block-granularity
//! garbage collection (Sections 4.4 and 4.5, Figure 8).
//!
//! Old versions are allocated when a primary processes a LOCK message: it
//! copies the current head version (payload, timestamp and old-version
//! pointer) into freshly allocated old-version memory, so that the head
//! version's location never changes. Old-version memory is carved into
//! blocks; each block is owned by one thread, allocation within a block is a
//! bump allocator, and an entire block is reclaimed once its **GC time**
//! (the maximum commit timestamp of the transactions that allocated versions
//! in it) falls below the global GC safe point.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::addr::{BlockId, OldAddr};

/// A stored old version of an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OldVersion {
    /// Write timestamp of this (old) version.
    pub ts: u64,
    /// Pointer to the next-older version, if any.
    pub ovp: Option<OldAddr>,
    /// Payload of this version.
    pub data: Bytes,
}

/// Approximate bytes consumed by one old version (payload + header), used
/// for block accounting.
fn entry_bytes(v: &OldVersion) -> usize {
    v.data.len() + 32
}

/// Errors from old-version allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OldVersionError {
    /// The configured old-version memory limit is exhausted; the caller
    /// applies one of the paper's three policies (block / abort / truncate).
    OutOfMemory,
}

impl std::fmt::Display for OldVersionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OldVersionError::OutOfMemory => write!(f, "old-version memory exhausted"),
        }
    }
}

impl std::error::Error for OldVersionError {}

#[derive(Debug)]
struct Block {
    /// Bumped every time the block is recycled; stale [`OldAddr`]s referring
    /// to a previous generation fail to resolve.
    generation: AtomicU32,
    /// Maximum commit timestamp of versions allocated in this block
    /// (0 for versions whose transaction aborted).
    gc_time: AtomicU64,
    used_bytes: AtomicUsize,
    /// Whether the block is some thread's currently-active allocation block
    /// (active blocks are never collected).
    active: AtomicU32,
    entries: RwLock<Vec<Option<OldVersion>>>,
}

impl Block {
    fn new() -> Self {
        Block {
            generation: AtomicU32::new(0),
            gc_time: AtomicU64::new(0),
            used_bytes: AtomicUsize::new(0),
            active: AtomicU32::new(0),
            entries: RwLock::new(Vec::new()),
        }
    }
}

/// Number of per-thread allocation cursors per store. Each thread allocates
/// through its own cursor shard, so concurrent LOCK batches — even to the
/// same primary — bump-allocate without contending on any store-global lock
/// (threads only share a shard when more than `CURSOR_SHARDS` of them hit
/// one store).
const CURSOR_SHARDS: usize = 64;

/// Per-machine old-version storage shared by all threads. Threads allocate
/// through per-thread cursor shards ([`OldVersionStore::allocate_local`], the
/// primary-side LOCK path) or through an explicitly owned
/// [`ThreadOldAllocator`].
pub struct OldVersionStore {
    block_bytes: usize,
    max_bytes: usize,
    blocks: RwLock<Vec<Arc<Block>>>,
    free_blocks: Mutex<Vec<BlockId>>,
    allocated_bytes: AtomicUsize,
    /// Per-thread-shard active-block cursors: each calling thread bump-
    /// allocates out of its own shard's block, exactly the paper's
    /// thread-local old-version allocation.
    cursors: Vec<Mutex<Option<BlockId>>>,
    /// Counters for reporting.
    blocks_created: AtomicU64,
    blocks_recycled: AtomicU64,
}

impl OldVersionStore {
    /// Creates a store with `block_bytes` per block and a total budget of
    /// `max_bytes` (the paper bounds old-version memory, e.g. 2 GB/server in
    /// the Figure 15 experiment).
    pub fn new(block_bytes: usize, max_bytes: usize) -> Self {
        assert!(block_bytes > 0 && max_bytes >= block_bytes);
        OldVersionStore {
            block_bytes,
            max_bytes,
            blocks: RwLock::new(Vec::new()),
            free_blocks: Mutex::new(Vec::new()),
            allocated_bytes: AtomicUsize::new(0),
            cursors: (0..CURSOR_SHARDS).map(|_| Mutex::new(None)).collect(),
            blocks_created: AtomicU64::new(0),
            blocks_recycled: AtomicU64::new(0),
        }
    }

    /// A store with defaults suitable for unit tests (small blocks).
    pub fn small() -> Self {
        Self::new(4 * 1024, 64 * 1024)
    }

    /// Bytes currently dedicated to old-version blocks.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes.load(Ordering::Relaxed)
    }

    /// (blocks created, blocks recycled) counters.
    pub fn block_counters(&self) -> (u64, u64) {
        (
            self.blocks_created.load(Ordering::Relaxed),
            self.blocks_recycled.load(Ordering::Relaxed),
        )
    }

    /// Resolves an old-version address, returning `None` if the block was
    /// garbage-collected (and possibly reused) since the address was minted —
    /// the reader then aborts or falls back, never observing unrelated data.
    pub fn resolve(&self, addr: OldAddr) -> Option<OldVersion> {
        let block = {
            let blocks = self.blocks.read();
            blocks.get(addr.block.0 as usize).cloned()?
        };
        if block.generation.load(Ordering::Acquire) & 0xFFFF != addr.generation & 0xFFFF {
            return None;
        }
        let entries = block.entries.read();
        let v = entries.get(addr.index as usize).cloned().flatten();
        drop(entries);
        // Re-check the generation: the block may have been recycled while we
        // were reading.
        if block.generation.load(Ordering::Acquire) & 0xFFFF != addr.generation & 0xFFFF {
            return None;
        }
        v
    }

    /// Raises the GC time of the block containing `addr` to at least `wts`.
    /// Called when the transaction that allocated the old version commits
    /// with write timestamp `wts`.
    pub fn set_gc_time(&self, addr: OldAddr, wts: u64) {
        let blocks = self.blocks.read();
        if let Some(block) = blocks.get(addr.block.0 as usize) {
            if block.generation.load(Ordering::Acquire) & 0xFFFF == addr.generation & 0xFFFF {
                block.gc_time.fetch_max(wts, Ordering::AcqRel);
            }
        }
    }

    /// Frees every non-active block whose GC time is below `gc_point`
    /// (Section 4.5). Returns the number of blocks reclaimed.
    pub fn collect(&self, gc_point: u64) -> usize {
        let blocks = self.blocks.read();
        let mut freed = 0;
        let mut free_list = self.free_blocks.lock();
        for (i, block) in blocks.iter().enumerate() {
            if block.active.load(Ordering::Acquire) != 0 {
                continue;
            }
            if block.used_bytes.load(Ordering::Acquire) == 0 {
                continue; // already on the free list
            }
            if block.gc_time.load(Ordering::Acquire) < gc_point {
                // Recycle: bump generation first so concurrent readers fail,
                // then clear contents.
                block.generation.fetch_add(1, Ordering::AcqRel);
                block.entries.write().clear();
                block.used_bytes.store(0, Ordering::Release);
                block.gc_time.store(0, Ordering::Release);
                free_list.push(BlockId(i as u32));
                freed += 1;
                self.blocks_recycled.fetch_add(1, Ordering::Relaxed);
            }
        }
        freed
    }

    /// Acquires a block for a thread allocator: reuses a free block if one is
    /// available, otherwise creates a new block if the budget allows.
    fn acquire_block(&self) -> Result<BlockId, OldVersionError> {
        if let Some(id) = self.free_blocks.lock().pop() {
            let blocks = self.blocks.read();
            blocks[id.0 as usize].active.store(1, Ordering::Release);
            return Ok(id);
        }
        let current = self.allocated_bytes.load(Ordering::Relaxed);
        if current + self.block_bytes > self.max_bytes {
            return Err(OldVersionError::OutOfMemory);
        }
        self.allocated_bytes
            .fetch_add(self.block_bytes, Ordering::Relaxed);
        self.blocks_created.fetch_add(1, Ordering::Relaxed);
        let mut blocks = self.blocks.write();
        let id = BlockId(blocks.len() as u32);
        let block = Arc::new(Block::new());
        block.active.store(1, Ordering::Release);
        blocks.push(block);
        Ok(id)
    }

    fn release_block(&self, id: BlockId) {
        let blocks = self.blocks.read();
        if let Some(b) = blocks.get(id.0 as usize) {
            b.active.store(0, Ordering::Release);
        }
    }

    /// Allocates an old version through the calling thread's cursor shard —
    /// the primary-side LOCK-processing path. The shard mutex is private to
    /// (almost always) one thread, so the common case is an uncontended lock
    /// plus a bump allocation; no store-global lock is taken.
    pub fn allocate_local(&self, version: OldVersion) -> Result<OldAddr, OldVersionError> {
        let mut cursor = self.cursors[crate::thread_ordinal() % CURSOR_SHARDS].lock();
        self.allocate_with_cursor(&mut cursor, version)
    }

    /// Bump-allocates `version` out of `cursor`'s active block, sealing full
    /// blocks and acquiring fresh ones as needed. Shared by the per-thread
    /// shard path and [`ThreadOldAllocator`].
    fn allocate_with_cursor(
        &self,
        cursor: &mut Option<BlockId>,
        version: OldVersion,
    ) -> Result<OldAddr, OldVersionError> {
        let bytes = entry_bytes(&version);
        loop {
            let block_id = match *cursor {
                Some(b) => b,
                None => {
                    let b = self.acquire_block()?;
                    *cursor = Some(b);
                    b
                }
            };
            let blocks = self.blocks.read();
            let block = &blocks[block_id.0 as usize];
            let used = block.used_bytes.load(Ordering::Acquire);
            if used + bytes > self.block_bytes && used > 0 {
                // Block full: seal it and take another one.
                drop(blocks);
                self.release_block(block_id);
                *cursor = None;
                continue;
            }
            block.used_bytes.fetch_add(bytes, Ordering::AcqRel);
            let mut entries = block.entries.write();
            let index = entries.len() as u32;
            entries.push(Some(version));
            let generation = block.generation.load(Ordering::Acquire);
            return Ok(OldAddr {
                block: block_id,
                index,
                generation,
            });
        }
    }

    /// Seals every per-thread cursor's active block so all of them become
    /// eligible for GC (e.g. at the end of a benchmark phase).
    pub fn detach_cursors(&self) {
        for shard in &self.cursors {
            if let Some(b) = shard.lock().take() {
                self.release_block(b);
            }
        }
    }
}

impl std::fmt::Debug for OldVersionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OldVersionStore")
            .field("allocated_bytes", &self.allocated_bytes())
            .field("block_bytes", &self.block_bytes)
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

/// A thread's handle for allocating old versions: keeps the thread's
/// currently-active block so the common case is a thread-local bump
/// allocation (one comparison and one addition, as in the paper).
pub struct ThreadOldAllocator {
    store: Arc<OldVersionStore>,
    current: Option<BlockId>,
}

impl ThreadOldAllocator {
    /// Creates an allocator drawing blocks from `store`.
    pub fn new(store: Arc<OldVersionStore>) -> Self {
        ThreadOldAllocator {
            store,
            current: None,
        }
    }

    /// The shared store this allocator draws from.
    pub fn store(&self) -> &Arc<OldVersionStore> {
        &self.store
    }

    /// Allocates an old version, returning its address. Fails with
    /// [`OldVersionError::OutOfMemory`] when the old-version budget is
    /// exhausted and no block can be reclaimed.
    pub fn allocate(&mut self, version: OldVersion) -> Result<OldAddr, OldVersionError> {
        self.store.allocate_with_cursor(&mut self.current, version)
    }

    /// Detaches from the current block so it becomes eligible for GC (e.g.
    /// at the end of a benchmark phase or when the thread goes idle).
    pub fn detach(&mut self) {
        if let Some(b) = self.current.take() {
            self.store.release_block(b);
        }
    }
}

impl Drop for ThreadOldAllocator {
    fn drop(&mut self) {
        self.detach();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ver(ts: u64, len: usize) -> OldVersion {
        OldVersion {
            ts,
            ovp: None,
            data: Bytes::from(vec![ts as u8; len]),
        }
    }

    #[test]
    fn allocate_and_resolve() {
        let store = Arc::new(OldVersionStore::small());
        let mut alloc = ThreadOldAllocator::new(Arc::clone(&store));
        let addr = alloc.allocate(ver(5, 100)).unwrap();
        let got = store.resolve(addr).unwrap();
        assert_eq!(got.ts, 5);
        assert_eq!(got.data.len(), 100);
    }

    #[test]
    fn chains_across_blocks() {
        let store = Arc::new(OldVersionStore::new(256, 16 * 1024));
        let mut alloc = ThreadOldAllocator::new(Arc::clone(&store));
        let mut prev: Option<OldAddr> = None;
        let mut addrs = Vec::new();
        for ts in 1..=20u64 {
            let v = OldVersion {
                ts,
                ovp: prev,
                data: Bytes::from(vec![0u8; 100]),
            };
            let a = alloc.allocate(v).unwrap();
            prev = Some(a);
            addrs.push(a);
        }
        // Walk the chain from the newest.
        let mut cur = prev;
        let mut seen = 0;
        while let Some(a) = cur {
            let v = store.resolve(a).unwrap();
            seen += 1;
            cur = v.ovp;
        }
        assert_eq!(seen, 20);
        let (created, _) = store.block_counters();
        assert!(created > 1, "several blocks should have been created");
    }

    #[test]
    fn out_of_memory_when_budget_exhausted() {
        let store = Arc::new(OldVersionStore::new(256, 512));
        let mut alloc = ThreadOldAllocator::new(Arc::clone(&store));
        let mut failures = 0;
        for ts in 0..100u64 {
            if alloc.allocate(ver(ts, 100)).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "budget of 512 bytes cannot hold 100 versions");
    }

    #[test]
    fn gc_reclaims_blocks_below_safe_point() {
        let store = Arc::new(OldVersionStore::new(256, 4096));
        let mut alloc = ThreadOldAllocator::new(Arc::clone(&store));
        let mut addrs = Vec::new();
        for ts in 1..=10u64 {
            let a = alloc.allocate(ver(ts, 100)).unwrap();
            store.set_gc_time(a, ts);
            addrs.push(a);
        }
        alloc.detach();
        // Safe point above every gc time: everything is reclaimed.
        let freed = store.collect(100);
        assert!(freed > 0);
        // Old addresses no longer resolve.
        assert!(addrs.iter().all(|a| store.resolve(*a).is_none()));
        // And the memory is reused rather than re-created.
        let (_created_before, recycled) = store.block_counters();
        assert!(recycled > 0);
        let mut alloc2 = ThreadOldAllocator::new(Arc::clone(&store));
        let a = alloc2.allocate(ver(50, 100)).unwrap();
        assert!(store.resolve(a).is_some());
    }

    #[test]
    fn gc_skips_active_blocks_and_recent_versions() {
        let store = Arc::new(OldVersionStore::new(1024, 8192));
        let mut alloc = ThreadOldAllocator::new(Arc::clone(&store));
        let a = alloc.allocate(ver(10, 100)).unwrap();
        store.set_gc_time(a, 10);
        // Block is still the thread's active block: not collected even though
        // its GC time is below the safe point.
        assert_eq!(store.collect(100), 0);
        assert!(store.resolve(a).is_some());
        alloc.detach();
        // Safe point below the GC time: still not collected.
        assert_eq!(store.collect(5), 0);
        assert!(store.resolve(a).is_some());
        // Now collectable.
        assert_eq!(store.collect(11), 1);
        assert!(store.resolve(a).is_none());
    }

    #[test]
    fn aborted_versions_have_zero_gc_time_and_are_collected_immediately() {
        let store = Arc::new(OldVersionStore::new(1024, 8192));
        let mut alloc = ThreadOldAllocator::new(Arc::clone(&store));
        let _a = alloc.allocate(ver(99, 100)).unwrap();
        // The allocating transaction aborted: set_gc_time is never called, so
        // the block's GC time stays 0 and any positive safe point reclaims it.
        alloc.detach();
        assert_eq!(store.collect(1), 1);
    }

    #[test]
    fn allocate_local_is_thread_sharded_and_detachable() {
        let store = Arc::new(OldVersionStore::new(1024, 64 * 1024));
        // Concurrent allocation through the per-thread shards: every address
        // resolves and no two threads corrupt each other's bump cursors.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    (0..50u64)
                        .map(|i| {
                            let a = store.allocate_local(ver(t * 100 + i, 40)).unwrap();
                            store.set_gc_time(a, t * 100 + i);
                            a
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut addrs = Vec::new();
        for h in handles {
            addrs.extend(h.join().unwrap());
        }
        assert_eq!(addrs.len(), 200);
        for a in &addrs {
            assert!(store.resolve(*a).is_some());
        }
        // Cursor blocks are active, so nothing below the safe point is
        // reclaimed until the cursors detach.
        store.detach_cursors();
        assert!(store.collect(10_000) > 0);
        assert!(addrs.iter().all(|a| store.resolve(*a).is_none()));
    }

    #[test]
    fn stale_generation_does_not_resolve_after_reuse() {
        let store = Arc::new(OldVersionStore::new(256, 256));
        let mut alloc = ThreadOldAllocator::new(Arc::clone(&store));
        let a = alloc.allocate(ver(1, 50)).unwrap();
        alloc.detach();
        assert_eq!(store.collect(10), 1);
        // Reuse the same block for a new version.
        let mut alloc2 = ThreadOldAllocator::new(Arc::clone(&store));
        let b = alloc2.allocate(ver(2, 50)).unwrap();
        assert_eq!(a.block, b.block, "block should have been recycled");
        assert_ne!(a.generation, b.generation);
        assert!(store.resolve(a).is_none(), "stale address must not resolve");
        assert_eq!(store.resolve(b).unwrap().ts, 2);
    }
}
