//! Global addresses.
//!
//! FaRM addresses objects with a flat 64-bit global address. We pack the
//! address as `region (16 bits) | slab (16 bits) | slot (32 bits)`: the
//! region identifies the replication unit (and therefore its primary and
//! backup machines), the slab identifies a fixed-size-class allocation area
//! within the region, and the slot identifies the object within the slab.
//! Old versions live in a separate, unreplicated address space addressed by
//! [`OldAddr`] (block + index), matching the paper's separation of head
//! versions (fixed location, RDMA-readable) from old-version blocks.

use std::fmt;

/// Identifier of a region — the unit of replication (Section 3.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u16);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A global object address: `(region, slab, slot)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// The region holding the object.
    pub region: RegionId,
    /// Slab index within the region.
    pub slab: u16,
    /// Slot index within the slab.
    pub slot: u32,
}

impl Addr {
    /// Packs the address into a single `u64` (as stored in FaRM pointers).
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.region.0 as u64) << 48) | ((self.slab as u64) << 32) | self.slot as u64
    }

    /// Unpacks an address from its `u64` representation.
    #[inline]
    pub fn unpack(raw: u64) -> Addr {
        Addr {
            region: RegionId((raw >> 48) as u16),
            slab: ((raw >> 32) & 0xFFFF) as u16,
            slot: (raw & 0xFFFF_FFFF) as u32,
        }
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.region, self.slab, self.slot)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Identifier of an old-version block (1 MB in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Address of an old version: block + entry index within the block.
///
/// The `generation` field detects stale pointers into blocks that have been
/// garbage-collected and reused: following such a pointer must fail (and the
/// reading transaction aborts / falls back) rather than observe unrelated
/// data, which is the memory-safety property the paper gets from the GC safe
/// point.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct OldAddr {
    /// The block holding the old version.
    pub block: BlockId,
    /// Entry index within the block.
    pub index: u32,
    /// Generation of the block at allocation time.
    pub generation: u32,
}

impl fmt::Debug for OldAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}[{}]@g{}", self.block, self.index, self.generation)
    }
}

impl OldAddr {
    /// Packs the old-version address into a `u64` for storage in the header
    /// `OVP` field. Layout: `block (24) | generation (16) | index (24)`.
    /// Panics (in debug builds) if a component exceeds its field width; the
    /// configured block counts and sizes keep them in range.
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!(self.block.0 < (1 << 24));
        debug_assert!(self.index < (1 << 24));
        ((self.block.0 as u64) << 40)
            | (((self.generation & 0xFFFF) as u64) << 24)
            | self.index as u64
    }

    /// Unpacks an [`OldAddr`] from its `u64` representation.
    #[inline]
    pub fn unpack(raw: u64) -> OldAddr {
        OldAddr {
            block: BlockId((raw >> 40) as u32),
            generation: ((raw >> 24) & 0xFFFF) as u32,
            index: (raw & 0xFF_FFFF) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_pack_roundtrip() {
        let a = Addr {
            region: RegionId(513),
            slab: 7,
            slot: 123_456,
        };
        assert_eq!(Addr::unpack(a.pack()), a);
        let b = Addr {
            region: RegionId(0),
            slab: 0,
            slot: 0,
        };
        assert_eq!(Addr::unpack(b.pack()), b);
        let c = Addr {
            region: RegionId(u16::MAX),
            slab: u16::MAX,
            slot: u32::MAX,
        };
        assert_eq!(Addr::unpack(c.pack()), c);
    }

    #[test]
    fn old_addr_pack_roundtrip() {
        let a = OldAddr {
            block: BlockId(12),
            index: 9_999,
            generation: 3,
        };
        assert_eq!(OldAddr::unpack(a.pack()), a);
        let b = OldAddr {
            block: BlockId(0),
            index: 0,
            generation: 0,
        };
        assert_eq!(OldAddr::unpack(b.pack()), b);
    }

    #[test]
    fn generation_wraps_at_16_bits_in_packed_form() {
        let a = OldAddr {
            block: BlockId(1),
            index: 2,
            generation: 0x1_0005,
        };
        let unpacked = OldAddr::unpack(a.pack());
        assert_eq!(unpacked.generation, 0x0005);
    }

    #[test]
    fn addresses_format_compactly() {
        let a = Addr {
            region: RegionId(1),
            slab: 2,
            slot: 3,
        };
        assert_eq!(format!("{a}"), "r1:2:3");
        let o = OldAddr {
            block: BlockId(4),
            index: 5,
            generation: 6,
        };
        assert_eq!(format!("{o:?}"), "b4[5]@g6");
    }
}
