//! YCSB-style key-value workload over a single transactional B-tree
//! (Sections 5.2 and 5.3, Figures 14 and 15).

use std::sync::Arc;

use farm_core::{Engine, NodeId, TxError, TxOptions};
use farm_index::BTree;
use rand::Rng;

use crate::zipf::Zipf;

/// Configuration of the YCSB-style workload.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of keys loaded into the B-tree.
    pub keys: u64,
    /// Value size in bytes (1 KB in the paper; scaled down by default so the
    /// in-process store stays small).
    pub value_size: usize,
    /// Fraction of single-key operations that are reads (the rest are
    /// updates). The Figure 14 experiment uses 0.5.
    pub read_fraction: f64,
    /// Zipf skew parameter θ for key selection.
    pub zipf_theta: f64,
    /// Length of range scans issued by the scan/update mix (Figure 15);
    /// 0 disables scans.
    pub scan_length: usize,
    /// When > 1, read operations fetch this many independently-sampled keys
    /// in one transaction via the batched `read_many` path (multi-key
    /// lookups). 0 or 1 keeps single-key reads.
    pub multiget_size: usize,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            keys: 10_000,
            value_size: 64,
            read_fraction: 0.5,
            zipf_theta: 0.0,
            scan_length: 0,
            multiget_size: 0,
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YcsbOp {
    /// Read one key.
    Read(u64),
    /// Read many keys in one transaction via the batched read path.
    MultiRead(Vec<u64>),
    /// Update one key with a fresh value.
    Update(u64),
    /// Scan `len` keys starting at `start`.
    Scan {
        /// First key of the scan.
        start: u64,
        /// Number of keys to read.
        len: usize,
    },
}

/// The loaded YCSB database: one B-tree spread over the cluster.
pub struct YcsbDatabase {
    engine: Arc<Engine>,
    tree: BTree,
    config: YcsbConfig,
    zipf: Zipf,
}

impl YcsbDatabase {
    /// Loads `config.keys` keys into a fresh B-tree using transactions
    /// coordinated round-robin over the cluster's machines.
    pub fn load(engine: &Arc<Engine>, config: YcsbConfig) -> Result<YcsbDatabase, TxError> {
        let tree = BTree::create(engine, NodeId(0));
        let nodes = engine.nodes().len() as u32;
        let batch = 64;
        let mut key = 0u64;
        while key < config.keys {
            let node = engine.node(NodeId((key / batch as u64 % nodes as u64) as u32));
            let mut tx = node.begin();
            for _ in 0..batch {
                if key >= config.keys {
                    break;
                }
                tree.put(&mut tx, key, &value_for(key, config.value_size))?;
                key += 1;
            }
            tx.commit()?;
        }
        let zipf = Zipf::new(config.keys, config.zipf_theta);
        Ok(YcsbDatabase {
            engine: Arc::clone(engine),
            tree,
            config,
            zipf,
        })
    }

    /// The underlying B-tree.
    pub fn tree(&self) -> &BTree {
        &self.tree
    }

    /// The workload configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// Draws the next operation. When `scan_length` is non-zero the mix is
    /// 50:50 (by keys touched) scans vs single-key updates as in Figure 15;
    /// otherwise it is the `read_fraction` mix of reads and updates of
    /// Figure 14.
    pub fn next_op<R: Rng + ?Sized>(&self, rng: &mut R) -> YcsbOp {
        if self.config.scan_length > 0 {
            // Keep the *keys scanned* : *keys updated* ratio at 50:50 — one
            // scan of length L is balanced by L single-key updates on
            // average.
            let p_scan = 1.0 / (1.0 + self.config.scan_length as f64);
            if rng.gen::<f64>() < p_scan {
                let max_start = self
                    .config
                    .keys
                    .saturating_sub(self.config.scan_length as u64);
                let start = if max_start == 0 {
                    0
                } else {
                    rng.gen_range(0..=max_start)
                };
                return YcsbOp::Scan {
                    start,
                    len: self.config.scan_length,
                };
            }
            return YcsbOp::Update(rng.gen_range(0..self.config.keys));
        }
        if rng.gen::<f64>() < self.config.read_fraction {
            if self.config.multiget_size > 1 {
                let keys = (0..self.config.multiget_size)
                    .map(|_| self.zipf.sample(rng))
                    .collect();
                return YcsbOp::MultiRead(keys);
            }
            YcsbOp::Read(self.zipf.sample(rng))
        } else {
            YcsbOp::Update(self.zipf.sample(rng))
        }
    }

    /// Executes one operation as its own transaction from `node`, returning
    /// the number of keys successfully touched (0 if the transaction
    /// aborted).
    pub fn execute(&self, node: NodeId, op: &YcsbOp, opts: TxOptions) -> Result<usize, TxError> {
        let engine_node = self.engine.node(node);
        match op {
            YcsbOp::Read(key) => {
                let mut tx = engine_node.begin_with(opts);
                let _ = self.tree.get(&mut tx, *key)?;
                tx.commit()?;
                Ok(1)
            }
            YcsbOp::MultiRead(keys) => {
                let mut tx = engine_node.begin_with(opts);
                let hits = self.tree.get_many(&mut tx, keys)?;
                tx.commit()?;
                Ok(hits.iter().filter(|v| v.is_some()).count())
            }
            YcsbOp::Update(key) => {
                let mut tx = engine_node.begin_with(opts);
                self.tree
                    .put(&mut tx, *key, &value_for(*key, self.config.value_size))?;
                tx.commit()?;
                Ok(1)
            }
            YcsbOp::Scan { start, len } => {
                let mut tx = engine_node.begin_with(opts);
                let rows = self.tree.scan(&mut tx, *start, *len)?;
                tx.commit()?;
                Ok(rows.len())
            }
        }
    }
}

fn value_for(key: u64, size: usize) -> Vec<u8> {
    let mut v = vec![(key % 251) as u8; size.max(8)];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_core::EngineConfig;
    use farm_kernel::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_db(theta: f64, scan_length: usize) -> (Arc<Engine>, YcsbDatabase) {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
        let db = YcsbDatabase::load(
            &engine,
            YcsbConfig {
                keys: 200,
                value_size: 32,
                read_fraction: 0.5,
                zipf_theta: theta,
                scan_length,
                ..Default::default()
            },
        )
        .unwrap();
        (engine, db)
    }

    #[test]
    fn load_and_execute_point_ops() {
        let (engine, db) = small_db(0.5, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut touched = 0;
        for _ in 0..50 {
            let op = db.next_op(&mut rng);
            assert!(!matches!(op, YcsbOp::Scan { .. }));
            touched += db
                .execute(NodeId(1), &op, TxOptions::serializable())
                .unwrap_or(0);
        }
        assert!(touched > 0);
        engine.shutdown();
    }

    #[test]
    fn scan_mix_generates_scans_and_updates() {
        let (engine, db) = small_db(0.0, 10);
        let mut rng = StdRng::seed_from_u64(10);
        let mut scans = 0;
        let mut updates = 0;
        for _ in 0..500 {
            match db.next_op(&mut rng) {
                YcsbOp::Scan { len, .. } => {
                    assert_eq!(len, 10);
                    scans += 1;
                }
                YcsbOp::Update(_) => updates += 1,
                YcsbOp::Read(_) | YcsbOp::MultiRead(_) => {
                    panic!("no plain reads in the scan mix")
                }
            }
        }
        assert!(scans > 10, "scans: {scans}");
        assert!(
            updates > scans,
            "updates should outnumber scans: {updates} vs {scans}"
        );
        // Execute a scan and an update for real.
        let got = db
            .execute(
                NodeId(2),
                &YcsbOp::Scan { start: 0, len: 10 },
                TxOptions::serializable(),
            )
            .unwrap();
        assert_eq!(got, 10);
        db.execute(NodeId(0), &YcsbOp::Update(5), TxOptions::serializable())
            .unwrap();
        engine.shutdown();
    }

    #[test]
    fn multiget_mix_generates_and_executes_batched_reads() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
        let db = YcsbDatabase::load(
            &engine,
            YcsbConfig {
                keys: 200,
                value_size: 32,
                read_fraction: 1.0,
                multiget_size: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let op = db.next_op(&mut rng);
        let YcsbOp::MultiRead(keys) = &op else {
            panic!("expected a MultiRead, got {op:?}");
        };
        assert_eq!(keys.len(), 8);
        let touched = db
            .execute(NodeId(1), &op, TxOptions::serializable())
            .unwrap();
        assert_eq!(touched, 8, "all sampled keys exist and are returned");
        engine.shutdown();
    }

    #[test]
    fn values_embed_their_key() {
        let (engine, db) = small_db(0.0, 0);
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        let v = db.tree().get(&mut tx, 42).unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 42);
        tx.commit().unwrap();
        engine.shutdown();
    }
}
