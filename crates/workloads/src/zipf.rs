//! Zipf-distributed key selection (used by the YCSB skew experiment,
//! Figure 14).

use rand::Rng;

/// A Zipf(θ) sampler over `0..n` using the standard YCSB/Gray et al.
/// construction: the probability of item `i` is proportional to
/// `1 / (i+1)^θ`. θ = 0 is uniform; θ close to 1 is highly skewed.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
    /// Precomputed `0.5^theta`: the second-item threshold used by every
    /// sample, hoisted out of the hot path (`powf` per key draw otherwise).
    half_pow_theta: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` (must be in `[0, 1)`
    /// or slightly above; exactly 1.0 is clamped).
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0);
        let theta = theta.clamp(0.0, 0.9999);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For large n this O(n) sum is precomputed once at construction;
        // cap the exact sum and approximate the tail with the integral to
        // keep construction cheap for hundreds of millions of keys.
        const EXACT: u64 = 1_000_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // Integral approximation of the remaining terms.
            let a = EXACT as f64;
            let b = n as f64;
            sum += if (theta - 1.0).abs() < 1e-9 {
                (b / a).ln()
            } else {
                (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
            };
        }
        sum
    }

    /// The number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one item in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }

    /// Internal consistency check used in tests.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1_000);
        }
    }

    #[test]
    fn zero_theta_is_roughly_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(
            max / min < 2.0,
            "uniform sampling too skewed: {min} .. {max}"
        );
    }

    #[test]
    fn high_theta_concentrates_on_hot_keys() {
        let z = Zipf::new(10_000, 0.95);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hot = 0u32;
        let total = 100_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 100 {
                hot += 1;
            }
        }
        // With θ=0.95 the hottest 1% of keys should absorb well over a third
        // of the accesses.
        assert!(hot as f64 / total as f64 > 0.35, "only {hot} hot hits");
    }

    #[test]
    fn skew_increases_with_theta() {
        let mut rng = StdRng::seed_from_u64(3);
        let frac_hot = |theta: f64, rng: &mut StdRng| {
            let z = Zipf::new(10_000, theta);
            let mut hot = 0;
            for _ in 0..50_000 {
                if z.sample(rng) < 100 {
                    hot += 1;
                }
            }
            hot as f64 / 50_000.0
        };
        let low = frac_hot(0.2, &mut rng);
        let high = frac_hot(0.9, &mut rng);
        assert!(high > low, "skew did not increase: {low} vs {high}");
    }

    #[test]
    fn large_n_constructs_quickly_and_samples() {
        let z = Zipf::new(285_000_000, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 285_000_000);
        }
    }
}
