//! # farm-workloads — TPC-C and YCSB-style workloads for the evaluation
//!
//! The paper evaluates FaRMv2 with two benchmarks (Section 5.1):
//!
//! * **TPC-C** — the full transaction mix over a schema with 16 indexes
//!   (hash tables for point access, B-trees where range queries are needed),
//!   scaled by warehouses per machine. Throughput is reported as committed
//!   `neworder` transactions per second.
//! * **YCSB** — a key-value workload over a single B-tree with Zipf-skewed
//!   key selection (Figure 14) and a scan/update variant with bounded
//!   old-version memory (Figure 15).
//!
//! This crate provides scaled-down but structurally faithful implementations
//! of both: the TPC-C schema keeps the tables, keys and transaction logic
//! relevant to the access patterns (multi-row reads and updates across
//! warehouses/districts/customers/stock/orders, an item catalog replicated
//! by sharding, order-line range reads), and the YCSB driver reproduces the
//! Zipf selection and the 50:50 scanned/updated-key ratio of the paper's
//! experiments.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use tpcc::{TpccConfig, TpccDatabase, TpccOutcome, TpccTxKind};
pub use ycsb::{YcsbConfig, YcsbDatabase, YcsbOp};
pub use zipf::Zipf;
