//! A scaled-down but structurally faithful TPC-C implementation
//! (Section 5.1: hash tables for point-access indexes, B-trees where range
//! queries are required, tables partitioned by warehouse, the full
//! five-transaction mix, throughput reported as committed neworders/s).

use std::sync::Arc;

use farm_core::{Engine, NodeId, TxError, TxOptions};
use farm_index::{BTree, HashTable};
use rand::Rng;

/// TPC-C sizing parameters (scaled down from the spec so that an in-process
/// cluster loads in milliseconds; the access structure is unchanged).
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Warehouses per machine (the paper loads 240 per server).
    pub warehouses_per_node: u32,
    /// Districts per warehouse (10 in the spec).
    pub districts_per_warehouse: u32,
    /// Customers per district (3000 in the spec).
    pub customers_per_district: u32,
    /// Catalog items (100 000 in the spec).
    pub items: u32,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses_per_node: 2,
            districts_per_warehouse: 4,
            customers_per_district: 16,
            items: 256,
        }
    }
}

/// The TPC-C transaction types and their standard mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccTxKind {
    /// New-order (45 % of the mix; the measured transaction).
    NewOrder,
    /// Payment (43 %).
    Payment,
    /// Order-status (4 %, read-only).
    OrderStatus,
    /// Delivery (4 %).
    Delivery,
    /// Stock-level (4 %, read-only).
    StockLevel,
}

impl TpccTxKind {
    /// Draws a transaction type according to the standard mix.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> TpccTxKind {
        match rng.gen_range(0..100u32) {
            0..=44 => TpccTxKind::NewOrder,
            45..=87 => TpccTxKind::Payment,
            88..=91 => TpccTxKind::OrderStatus,
            92..=95 => TpccTxKind::Delivery,
            _ => TpccTxKind::StockLevel,
        }
    }
}

/// Result of executing one TPC-C transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccOutcome {
    /// The transaction committed.
    Committed(TpccTxKind),
    /// The transaction aborted (conflict); the caller may retry.
    Aborted(TpccTxKind),
}

// Composite-key encodings ---------------------------------------------------

fn wh_key(w: u32) -> Vec<u8> {
    w.to_be_bytes().to_vec()
}
fn district_key(w: u32, d: u32) -> Vec<u8> {
    [w.to_be_bytes(), d.to_be_bytes()].concat()
}
fn customer_key(w: u32, d: u32, c: u32) -> Vec<u8> {
    [w.to_be_bytes(), d.to_be_bytes(), c.to_be_bytes()].concat()
}
fn item_key(i: u32) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}
fn stock_key(w: u32, i: u32) -> Vec<u8> {
    [w.to_be_bytes(), i.to_be_bytes()].concat()
}
fn order_key(w: u32, d: u32, o: u32) -> u64 {
    ((w as u64) << 40) | ((d as u64) << 32) | o as u64
}
fn orderline_key(w: u32, d: u32, o: u32, ol: u32) -> u64 {
    ((w as u64) << 44) | ((d as u64) << 36) | ((o as u64) << 4) | ol as u64
}

fn enc_u64s(values: &[u64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}
fn dec_u64(data: &[u8], index: usize) -> u64 {
    let start = index * 8;
    u64::from_le_bytes(data[start..start + 8].try_into().unwrap())
}

/// The loaded TPC-C database: 8 indexes over the cluster (the spec's 16
/// indexes collapse here because we keep only the primary index of each
/// table plus the order-line and order B-trees used by range queries).
pub struct TpccDatabase {
    engine: Arc<Engine>,
    config: TpccConfig,
    warehouses: u32,
    warehouse: HashTable,
    district: HashTable,
    customer: HashTable,
    item: HashTable,
    stock: HashTable,
    orders: BTree,
    new_orders: BTree,
    order_lines: BTree,
}

impl TpccDatabase {
    /// Loads the database, scaling the warehouse count with the cluster size
    /// (as the paper does: 240 warehouses per server).
    pub fn load(engine: &Arc<Engine>, config: TpccConfig) -> Result<TpccDatabase, TxError> {
        let nodes = engine.nodes().len() as u32;
        let warehouses = config.warehouses_per_node * nodes;
        let buckets = (warehouses * config.districts_per_warehouse * 4).max(64) as usize;
        let db = TpccDatabase {
            engine: Arc::clone(engine),
            config,
            warehouses,
            warehouse: HashTable::create(engine, NodeId(0), warehouses.max(8) as usize)?,
            district: HashTable::create(engine, NodeId(0), buckets / 2)?,
            customer: HashTable::create(engine, NodeId(0), buckets)?,
            item: HashTable::create(engine, NodeId(0), (config.items / 2).max(16) as usize)?,
            stock: HashTable::create(engine, NodeId(0), buckets)?,
            orders: BTree::create(engine, NodeId(0)),
            new_orders: BTree::create(engine, NodeId(0)),
            order_lines: BTree::create(engine, NodeId(0)),
        };
        // Item catalog.
        {
            let mut tx = engine.node(NodeId(0)).begin();
            for i in 0..config.items {
                // (price, data)
                db.item.put(
                    &mut tx,
                    &item_key(i),
                    &enc_u64s(&[(i as u64 % 100) + 1, i as u64]),
                )?;
            }
            tx.commit()?;
        }
        // Per-warehouse data, loaded from the node that will coordinate it.
        for w in 0..warehouses {
            let node = NodeId(w % nodes);
            let mut tx = engine.node(node).begin();
            // (ytd)
            db.warehouse.put(&mut tx, &wh_key(w), &enc_u64s(&[0]))?;
            for d in 0..config.districts_per_warehouse {
                // (next_o_id, ytd)
                db.district
                    .put(&mut tx, &district_key(w, d), &enc_u64s(&[1, 0]))?;
                for c in 0..config.customers_per_district {
                    // (balance, payments, deliveries)
                    db.customer
                        .put(&mut tx, &customer_key(w, d, c), &enc_u64s(&[1_000, 0, 0]))?;
                }
            }
            tx.commit()?;
            let mut tx = engine.node(node).begin();
            for i in 0..config.items {
                // (quantity, ytd)
                db.stock
                    .put(&mut tx, &stock_key(w, i), &enc_u64s(&[100, 0]))?;
            }
            tx.commit()?;
        }
        Ok(db)
    }

    /// Total warehouses loaded.
    pub fn warehouses(&self) -> u32 {
        self.warehouses
    }

    /// The sizing configuration.
    pub fn config(&self) -> TpccConfig {
        self.config
    }

    /// Executes one transaction of the given kind from `node`, using the
    /// "home warehouse" convention: the warehouse is chosen from those whose
    /// coordinating node is `node` (partitioning by warehouse, Section 5.1).
    pub fn execute<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        kind: TpccTxKind,
        opts: TxOptions,
        rng: &mut R,
    ) -> Result<TpccOutcome, TxError> {
        let nodes = self.engine.nodes().len() as u32;
        let local_warehouses: Vec<u32> = (0..self.warehouses)
            .filter(|w| w % nodes == node.0)
            .collect();
        let w = local_warehouses[rng.gen_range(0..local_warehouses.len())];
        let d = rng.gen_range(0..self.config.districts_per_warehouse);
        let c = rng.gen_range(0..self.config.customers_per_district);
        let result = match kind {
            TpccTxKind::NewOrder => self.new_order(node, w, d, c, opts, rng),
            TpccTxKind::Payment => self.payment(node, w, d, c, opts, rng),
            TpccTxKind::OrderStatus => self.order_status(node, w, d, c, opts),
            TpccTxKind::Delivery => self.delivery(node, w, opts),
            TpccTxKind::StockLevel => self.stock_level(node, w, d, opts),
        };
        match result {
            Ok(()) => Ok(TpccOutcome::Committed(kind)),
            Err(e) if e.is_retryable() => Ok(TpccOutcome::Aborted(kind)),
            Err(e) => Err(e),
        }
    }

    fn new_order<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        w: u32,
        d: u32,
        c: u32,
        opts: TxOptions,
        rng: &mut R,
    ) -> Result<(), TxError> {
        let mut tx = self.engine.node(node).begin_with(opts);
        let _wh = self.warehouse.get(&mut tx, &wh_key(w))?;
        let district = self
            .district
            .get(&mut tx, &district_key(w, d))?
            .ok_or(TxError::InvalidOperation("missing district"))?;
        let o_id = dec_u64(&district, 0) as u32;
        let ytd = dec_u64(&district, 1);
        self.district.put(
            &mut tx,
            &district_key(w, d),
            &enc_u64s(&[o_id as u64 + 1, ytd]),
        )?;
        let _cust = self.customer.get(&mut tx, &customer_key(w, d, c))?;
        let lines = rng.gen_range(5..=15u32);
        let mut total = 0u64;
        for ol in 0..lines {
            let i = rng.gen_range(0..self.config.items);
            // 1% of items come from a remote warehouse, as in the spec.
            let supply_w = if rng.gen_range(0..100) == 0 {
                rng.gen_range(0..self.warehouses)
            } else {
                w
            };
            let item = self
                .item
                .get(&mut tx, &item_key(i))?
                .ok_or(TxError::InvalidOperation("missing item"))?;
            let price = dec_u64(&item, 0);
            let stock = self
                .stock
                .get(&mut tx, &stock_key(supply_w, i))?
                .ok_or(TxError::InvalidOperation("missing stock"))?;
            let qty = dec_u64(&stock, 0);
            let s_ytd = dec_u64(&stock, 1);
            let order_qty = rng.gen_range(1..=10u64);
            let new_qty = if qty > order_qty + 10 {
                qty - order_qty
            } else {
                qty + 91 - order_qty
            };
            self.stock.put(
                &mut tx,
                &stock_key(supply_w, i),
                &enc_u64s(&[new_qty, s_ytd + order_qty]),
            )?;
            total += price * order_qty;
            self.order_lines.put(
                &mut tx,
                orderline_key(w, d, o_id, ol),
                &enc_u64s(&[i as u64, order_qty, price]),
            )?;
        }
        self.orders.put(
            &mut tx,
            order_key(w, d, o_id),
            &enc_u64s(&[c as u64, lines as u64, total]),
        )?;
        self.new_orders
            .put(&mut tx, order_key(w, d, o_id), &enc_u64s(&[c as u64]))?;
        tx.commit()?;
        Ok(())
    }

    fn payment<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        w: u32,
        d: u32,
        c: u32,
        opts: TxOptions,
        rng: &mut R,
    ) -> Result<(), TxError> {
        let amount = rng.gen_range(1..=5_000u64);
        let mut tx = self.engine.node(node).begin_with(opts);
        let wh = self
            .warehouse
            .get(&mut tx, &wh_key(w))?
            .ok_or(TxError::InvalidOperation("missing warehouse"))?;
        self.warehouse
            .put(&mut tx, &wh_key(w), &enc_u64s(&[dec_u64(&wh, 0) + amount]))?;
        let district = self
            .district
            .get(&mut tx, &district_key(w, d))?
            .ok_or(TxError::InvalidOperation("missing district"))?;
        self.district.put(
            &mut tx,
            &district_key(w, d),
            &enc_u64s(&[dec_u64(&district, 0), dec_u64(&district, 1) + amount]),
        )?;
        let cust = self
            .customer
            .get(&mut tx, &customer_key(w, d, c))?
            .ok_or(TxError::InvalidOperation("missing customer"))?;
        let balance = dec_u64(&cust, 0);
        self.customer.put(
            &mut tx,
            &customer_key(w, d, c),
            &enc_u64s(&[
                balance.saturating_sub(amount),
                dec_u64(&cust, 1) + 1,
                dec_u64(&cust, 2),
            ]),
        )?;
        tx.commit()?;
        Ok(())
    }

    fn order_status(
        &self,
        node: NodeId,
        w: u32,
        d: u32,
        c: u32,
        opts: TxOptions,
    ) -> Result<(), TxError> {
        let mut tx = self.engine.node(node).begin_with(opts);
        let _cust = self.customer.get(&mut tx, &customer_key(w, d, c))?;
        // Most recent order of the district (scan backwards is emulated by a
        // bounded forward scan over this district's key range).
        let orders = self.orders.scan(&mut tx, order_key(w, d, 0), 64)?;
        if let Some((okey, row)) = orders.last() {
            let o_id = (okey & 0xFFFF_FFFF) as u32;
            let lines = dec_u64(row, 1) as usize;
            let _ = self
                .order_lines
                .scan(&mut tx, orderline_key(w, d, o_id, 0), lines)?;
        }
        tx.commit()?;
        Ok(())
    }

    fn delivery(&self, node: NodeId, w: u32, opts: TxOptions) -> Result<(), TxError> {
        let mut tx = self.engine.node(node).begin_with(opts);
        for d in 0..self.config.districts_per_warehouse {
            let pending = self.new_orders.scan(&mut tx, order_key(w, d, 0), 1)?;
            let Some((okey, row)) = pending.first() else {
                continue;
            };
            if *okey >= order_key(w, d + 1, 0) {
                continue; // the scan ran into the next district
            }
            let o_id = (okey & 0xFFFF_FFFF) as u32;
            let c = dec_u64(row, 0) as u32;
            self.new_orders.remove(&mut tx, *okey)?;
            let cust = self
                .customer
                .get(&mut tx, &customer_key(w, d, c))?
                .ok_or(TxError::InvalidOperation("missing customer"))?;
            let order = self
                .orders
                .get(&mut tx, order_key(w, d, o_id))?
                .ok_or(TxError::InvalidOperation("missing order"))?;
            let total = dec_u64(&order, 2);
            self.customer.put(
                &mut tx,
                &customer_key(w, d, c),
                &enc_u64s(&[
                    dec_u64(&cust, 0) + total,
                    dec_u64(&cust, 1),
                    dec_u64(&cust, 2) + 1,
                ]),
            )?;
        }
        tx.commit()?;
        Ok(())
    }

    fn stock_level(&self, node: NodeId, w: u32, d: u32, opts: TxOptions) -> Result<(), TxError> {
        let mut tx = self.engine.node(node).begin_with(opts);
        let district = self
            .district
            .get(&mut tx, &district_key(w, d))?
            .ok_or(TxError::InvalidOperation("missing district"))?;
        let next_o_id = dec_u64(&district, 0) as u32;
        let first = next_o_id.saturating_sub(20);
        let lines = self
            .order_lines
            .scan(&mut tx, orderline_key(w, d, first, 0), 20 * 15)?;
        let mut low = 0;
        for (_, row) in lines.iter().take(100) {
            let item = dec_u64(row, 0) as u32;
            if let Some(stock) = self.stock.get(&mut tx, &stock_key(w, item))? {
                if dec_u64(&stock, 0) < 15 {
                    low += 1;
                }
            }
        }
        let _ = low;
        tx.commit()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_core::EngineConfig;
    use farm_kernel::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> TpccConfig {
        TpccConfig {
            warehouses_per_node: 1,
            districts_per_warehouse: 2,
            customers_per_district: 4,
            items: 32,
        }
    }

    #[test]
    fn mix_matches_spec_fractions_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut neworders = 0;
        for _ in 0..10_000 {
            if TpccTxKind::sample(&mut rng) == TpccTxKind::NewOrder {
                neworders += 1;
            }
        }
        let frac = neworders as f64 / 10_000.0;
        assert!((0.40..0.50).contains(&frac), "neworder fraction {frac}");
    }

    #[test]
    fn loads_and_runs_the_full_mix() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
        let db = TpccDatabase::load(&engine, tiny()).unwrap();
        assert_eq!(db.warehouses(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut committed = 0;
        let mut neworders = 0;
        for i in 0..120 {
            let node = NodeId(i % 3);
            let kind = TpccTxKind::sample(&mut rng);
            match db
                .execute(node, kind, TxOptions::serializable(), &mut rng)
                .unwrap()
            {
                TpccOutcome::Committed(k) => {
                    committed += 1;
                    if k == TpccTxKind::NewOrder {
                        neworders += 1;
                    }
                }
                TpccOutcome::Aborted(_) => {}
            }
        }
        assert!(committed > 80, "only {committed}/120 committed");
        assert!(neworders > 10, "only {neworders} neworders committed");
        engine.shutdown();
    }

    #[test]
    fn new_order_advances_the_district_sequence() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
        let db = TpccDatabase::load(&engine, tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let _ = db.execute(
                NodeId(0),
                TpccTxKind::NewOrder,
                TxOptions::serializable(),
                &mut rng,
            );
        }
        // The next_o_id of at least one district of warehouse 0 must have
        // advanced beyond its initial value of 1.
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        let mut advanced = false;
        for d in 0..tiny().districts_per_warehouse {
            let row = db
                .district
                .get(&mut tx, &district_key(0, d))
                .unwrap()
                .unwrap();
            if dec_u64(&row, 0) > 1 {
                advanced = true;
            }
        }
        tx.commit().unwrap();
        assert!(advanced);
        engine.shutdown();
    }

    #[test]
    fn works_under_baseline_engine_too() {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::baseline());
        let db = TpccDatabase::load(&engine, tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut committed = 0;
        for _ in 0..40 {
            if matches!(
                db.execute(
                    NodeId(0),
                    TpccTxKind::sample(&mut rng),
                    TxOptions::serializable(),
                    &mut rng
                )
                .unwrap(),
                TpccOutcome::Committed(_)
            ) {
                committed += 1;
            }
        }
        assert!(committed > 20);
        engine.shutdown();
    }
}
