//! # farm-disklog — on-disk backups with a redirection map and a GC-pruned
//! version map (Section 4.9)
//!
//! FaRM can keep backup replicas on disk (or SSD) in a log-structured format
//! to trade update/recovery speed for DRAM cost. Committed transactions
//! append updated objects to per-subregion extent groups; an in-memory
//! **redirection map** maps each object to the block holding its latest
//! version so that on-demand reads during recovery need a single block read.
//!
//! Because backups apply transactions asynchronously and possibly out of
//! order, the backup must know, per object, the highest timestamp already
//! applied. FaRMv1 stored that 8-byte version inline in the redirection map
//! (9–10 bytes/object); FaRMv2 keeps a separate **version map** whose
//! entries are discarded once the global GC safe point passes them —
//! guaranteeing no older update can arrive — which shrinks the steady-state
//! overhead to the block id alone (1–2 bytes/object), a 5–9× reduction.
//!
//! The "disk" here is an in-memory block store (the device is irrelevant to
//! the memory-overhead claim); the log-structured layout, block addressing
//! and the two maps follow Figure 11.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::collections::BTreeMap;

/// Sizing of the simulated log-structured store.
#[derive(Debug, Clone, Copy)]
pub struct DiskBackupConfig {
    /// Bytes per block (4 KB in the paper's example).
    pub block_bytes: usize,
    /// Blocks per extent group (256 MB groups of 4 KB blocks in the paper;
    /// scaled down here).
    pub blocks_per_group: usize,
}

impl Default for DiskBackupConfig {
    fn default() -> Self {
        DiskBackupConfig {
            block_bytes: 4 * 1024,
            blocks_per_group: 4 * 1024,
        }
    }
}

/// One logged object version in a block.
#[derive(Debug, Clone)]
struct LogEntry {
    object: u64,
    write_ts: u64,
    len: usize,
}

/// A log block: object headers plus payload bytes (payload contents are not
/// materialized; only sizes matter for the layout).
#[derive(Debug, Default, Clone)]
struct Block {
    entries: Vec<LogEntry>,
    used: usize,
}

/// An on-disk backup replica of one region: log blocks plus the redirection
/// and version maps.
#[derive(Debug)]
pub struct DiskBackup {
    config: DiskBackupConfig,
    blocks: Vec<Block>,
    /// Redirection map: object → block id holding its latest version.
    /// 2 bytes/entry with the paper's 256 MB groups of 4 KB blocks; we store
    /// it as `u16` to keep the overhead accounting honest.
    redirection: BTreeMap<u64, u16>,
    /// Version map: object → highest applied write timestamp, pruned below
    /// the GC safe point.
    versions: BTreeMap<u64, u64>,
    /// Updates skipped because a newer version was already applied.
    stale_skipped: u64,
}

impl DiskBackup {
    /// Creates an empty backup.
    pub fn new(config: DiskBackupConfig) -> Self {
        DiskBackup {
            config,
            blocks: vec![Block::default()],
            redirection: BTreeMap::new(),
            versions: BTreeMap::new(),
            stale_skipped: 0,
        }
    }

    /// Applies one (possibly out-of-order) replicated update: appends the
    /// object to the log and updates the maps, unless a newer version was
    /// already applied.
    pub fn apply_update(&mut self, object: u64, write_ts: u64, payload: &[u8]) {
        // Out-of-order check: consult the version map; objects absent from it
        // are guaranteed (by the GC safe point) to have no newer pending
        // update, unless the redirection map disagrees via a later block.
        if let Some(&applied) = self.versions.get(&object) {
            if applied >= write_ts {
                self.stale_skipped += 1;
                return;
            }
        }
        let need = payload.len() + 16;
        if self
            .blocks
            .last()
            .map(|b| b.used + need > self.config.block_bytes)
            .unwrap_or(true)
        {
            self.blocks.push(Block::default());
        }
        let block_id = self.blocks.len() - 1;
        let block = self.blocks.last_mut().expect("block exists");
        block.entries.push(LogEntry {
            object,
            write_ts,
            len: payload.len(),
        });
        block.used += need;
        self.redirection
            .insert(object, (block_id % u16::MAX as usize) as u16);
        self.versions.insert(object, write_ts);
    }

    /// Drops version-map entries at or below the GC safe point: no update
    /// with a timestamp older than `gc_safe_point` can ever arrive, so the
    /// entries are no longer needed for out-of-order detection.
    pub fn prune_versions(&mut self, gc_safe_point: u64) {
        self.versions.retain(|_, ts| *ts > gc_safe_point);
    }

    /// On-demand read: returns the latest applied `(write_ts, len)` for the
    /// object by scanning the block the redirection map points to, as a
    /// recovery-time read would.
    pub fn read_latest(&self, object: u64) -> Option<(u64, usize)> {
        let block_id = *self.redirection.get(&object)? as usize;
        let block = self.blocks.get(block_id)?;
        block
            .entries
            .iter()
            .filter(|e| e.object == object)
            .max_by_key(|e| e.write_ts)
            .map(|e| (e.write_ts, e.len))
    }

    /// Number of log blocks written.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of entries currently in the version map.
    pub fn version_map_len(&self) -> usize {
        self.versions.len()
    }

    /// Number of stale (out-of-order, already-superseded) updates skipped.
    pub fn stale_skipped(&self) -> u64 {
        self.stale_skipped
    }

    /// FaRMv2 map overhead in bytes: 2 bytes of block id per object in the
    /// redirection map plus 8 bytes per surviving version-map entry.
    pub fn map_overhead_bytes(&self) -> usize {
        self.redirection.len() * 2 + self.versions.len() * 8
    }

    /// What FaRMv1 would need: block id plus an 8-byte version inline for
    /// every object (9–10 bytes/object in the paper; 10 here).
    pub fn farmv1_equivalent_overhead_bytes(&self) -> usize {
        self.redirection.len() * 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_updates_and_reads_back_latest() {
        let mut b = DiskBackup::new(DiskBackupConfig::default());
        b.apply_update(1, 10, &[0u8; 100]);
        b.apply_update(1, 20, &[0u8; 120]);
        b.apply_update(2, 15, &[0u8; 50]);
        assert_eq!(b.read_latest(1), Some((20, 120)));
        assert_eq!(b.read_latest(2), Some((15, 50)));
        assert_eq!(b.read_latest(3), None);
    }

    #[test]
    fn out_of_order_updates_are_skipped() {
        let mut b = DiskBackup::new(DiskBackupConfig::default());
        b.apply_update(7, 20, &[0u8; 10]);
        b.apply_update(7, 10, &[0u8; 10]); // arrives late
        assert_eq!(b.stale_skipped(), 1);
        assert_eq!(b.read_latest(7), Some((20, 10)));
    }

    #[test]
    fn blocks_roll_over_when_full() {
        let mut b = DiskBackup::new(DiskBackupConfig {
            block_bytes: 256,
            blocks_per_group: 16,
        });
        for i in 0..50u64 {
            b.apply_update(i, i + 1, &[0u8; 100]);
        }
        assert!(b.block_count() > 10);
        assert_eq!(b.read_latest(49), Some((50, 100)));
    }

    #[test]
    fn pruning_version_map_reduces_overhead_5_to_9x() {
        let mut b = DiskBackup::new(DiskBackupConfig::default());
        for i in 0..10_000u64 {
            b.apply_update(i, i + 1, &[0u8; 64]);
        }
        let before = b.map_overhead_bytes();
        assert!(before >= 10_000 * 10);
        b.prune_versions(20_000);
        assert_eq!(b.version_map_len(), 0);
        let after = b.map_overhead_bytes();
        let v1 = b.farmv1_equivalent_overhead_bytes();
        let reduction = v1 as f64 / after as f64;
        assert!((4.0..=10.0).contains(&reduction), "reduction {reduction}");
        // Reads still work after pruning.
        assert_eq!(b.read_latest(5), Some((6, 64)));
    }

    #[test]
    fn pruning_keeps_entries_above_the_safe_point() {
        let mut b = DiskBackup::new(DiskBackupConfig::default());
        b.apply_update(1, 10, &[0u8; 8]);
        b.apply_update(2, 30, &[0u8; 8]);
        b.prune_versions(20);
        assert_eq!(b.version_map_len(), 1);
        // The surviving entry still guards against late duplicates.
        b.apply_update(2, 25, &[0u8; 8]);
        assert_eq!(b.stale_skipped(), 1);
    }
}
