//! Tiny length-prefixed encoding for (key, value) entry lists stored inside
//! bucket / leaf objects.

use bytes::{BufMut, Bytes, BytesMut};

/// Encodes a list of `(key, value)` pairs into one object payload.
pub fn encode_entries(entries: &[(Vec<u8>, Vec<u8>)]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u16_le(entries.len() as u16);
    for (k, v) in entries {
        buf.put_u16_le(k.len() as u16);
        buf.put_slice(k);
        buf.put_u16_le(v.len() as u16);
        buf.put_slice(v);
    }
    buf.freeze()
}

/// Decodes an object payload produced by [`encode_entries`]. Returns an empty
/// list for an empty payload (freshly allocated bucket).
pub fn decode_entries(data: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
    if data.len() < 2 {
        return Vec::new();
    }
    let count = u16::from_le_bytes([data[0], data[1]]) as usize;
    let mut out = Vec::with_capacity(count);
    let mut pos = 2;
    for _ in 0..count {
        if pos + 2 > data.len() {
            break;
        }
        let klen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        if pos + klen > data.len() {
            break;
        }
        let key = data[pos..pos + klen].to_vec();
        pos += klen;
        if pos + 2 > data.len() {
            break;
        }
        let vlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        if pos + vlen > data.len() {
            break;
        }
        let value = data[pos..pos + vlen].to_vec();
        pos += vlen;
        out.push((key, value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let entries = vec![
            (b"alpha".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), vec![7u8; 100]),
            (Vec::new(), Vec::new()),
        ];
        let encoded = encode_entries(&entries);
        assert_eq!(decode_entries(&encoded), entries);
    }

    #[test]
    fn empty_and_garbage_payloads_decode_to_empty() {
        assert!(decode_entries(&[]).is_empty());
        assert!(decode_entries(&[0]).is_empty());
        let truncated = encode_entries(&[(b"key".to_vec(), b"value".to_vec())]);
        let cut = &truncated[..truncated.len() - 2];
        // Truncated payloads never panic; they just yield fewer entries.
        assert!(decode_entries(cut).len() <= 1);
    }
}
