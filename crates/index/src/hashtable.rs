//! A transactional chained hash table.
//!
//! The table consists of a fixed directory of bucket objects, allocated once
//! at creation. Keys hash to a bucket; the bucket object stores the entries
//! for all keys that map to it. Every operation reads (and possibly writes)
//! the bucket inside the caller's transaction, so lookups and updates across
//! many buckets and tables are serialized by the FaRMv2 protocol.
//!
//! With opacity there is no need for the per-bucket version fields and "fat
//! pointers" FaRMv1's hopscotch table required (Section 2): the consistent
//! snapshot already guarantees that a lookup sees a single point in time.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use farm_core::{Addr, Engine, NodeId, Transaction, TxError};

use crate::codec::{decode_entries, encode_entries};

/// A fixed-directory chained hash table.
#[derive(Debug, Clone)]
pub struct HashTable {
    buckets: Arc<Vec<Addr>>,
}

impl HashTable {
    /// Creates a table with `bucket_count` buckets, allocating the bucket
    /// objects across the cluster in a single transaction coordinated by
    /// `creator`.
    pub fn create(
        engine: &Arc<Engine>,
        creator: NodeId,
        bucket_count: usize,
    ) -> Result<HashTable, TxError> {
        assert!(bucket_count > 0);
        let node = engine.node(creator);
        let regions = engine.cluster().regions();
        let mut tx = node.begin();
        let mut buckets = Vec::with_capacity(bucket_count);
        for i in 0..bucket_count {
            // Spread buckets across regions (and therefore machines).
            let region = regions[i % regions.len()];
            let addr = tx.alloc_in(region, encode_entries(&[]))?;
            buckets.push(addr);
        }
        tx.commit()?;
        Ok(HashTable {
            buckets: Arc::new(buckets),
        })
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_of(&self, key: &[u8]) -> Addr {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let h = hasher.finish() as usize;
        self.buckets[h % self.buckets.len()]
    }

    /// Looks up `key` within `tx`.
    pub fn get(&self, tx: &mut Transaction, key: &[u8]) -> Result<Option<Vec<u8>>, TxError> {
        let bucket = self.bucket_of(key);
        let data = tx.read(bucket)?;
        Ok(decode_entries(&data)
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v))
    }

    /// Inserts or updates `key` within `tx`.
    pub fn put(&self, tx: &mut Transaction, key: &[u8], value: &[u8]) -> Result<(), TxError> {
        let bucket = self.bucket_of(key);
        let data = tx.read(bucket)?;
        let mut entries = decode_entries(&data);
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.to_vec(),
            None => entries.push((key.to_vec(), value.to_vec())),
        }
        tx.write(bucket, encode_entries(&entries))
    }

    /// Removes `key` within `tx`, returning whether it was present.
    pub fn remove(&self, tx: &mut Transaction, key: &[u8]) -> Result<bool, TxError> {
        let bucket = self.bucket_of(key);
        let data = tx.read(bucket)?;
        let mut entries = decode_entries(&data);
        let before = entries.len();
        entries.retain(|(k, _)| k != key);
        if entries.len() == before {
            return Ok(false);
        }
        tx.write(bucket, encode_entries(&entries))?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_core::EngineConfig;
    use farm_kernel::ClusterConfig;

    fn setup() -> (Arc<Engine>, HashTable) {
        let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
        let table = HashTable::create(&engine, NodeId(0), 16).unwrap();
        (engine, table)
    }

    #[test]
    fn put_get_remove() {
        let (engine, table) = setup();
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        assert_eq!(table.get(&mut tx, b"missing").unwrap(), None);
        table.put(&mut tx, b"k1", b"v1").unwrap();
        table.put(&mut tx, b"k2", b"v2").unwrap();
        tx.commit().unwrap();

        let mut tx = node.begin();
        assert_eq!(table.get(&mut tx, b"k1").unwrap(), Some(b"v1".to_vec()));
        table.put(&mut tx, b"k1", b"v1b").unwrap();
        assert!(table.remove(&mut tx, b"k2").unwrap());
        assert!(!table.remove(&mut tx, b"nope").unwrap());
        tx.commit().unwrap();

        let mut tx = engine.node(NodeId(1)).begin();
        assert_eq!(table.get(&mut tx, b"k1").unwrap(), Some(b"v1b".to_vec()));
        assert_eq!(table.get(&mut tx, b"k2").unwrap(), None);
        tx.commit().unwrap();
        engine.shutdown();
    }

    #[test]
    fn conflicting_puts_to_same_bucket_serialize() {
        let (engine, table) = setup();
        let node = engine.node(NodeId(0));
        // Same key from two transactions: one must abort or they serialize.
        let mut t1 = node.begin();
        let mut t2 = node.begin();
        table.put(&mut t1, b"k", b"a").unwrap();
        table.put(&mut t2, b"k", b"b").unwrap();
        let r1 = t1.commit();
        let r2 = t2.commit();
        assert!(r1.is_ok() ^ r2.is_ok());
        engine.shutdown();
    }

    #[test]
    fn many_keys_spread_over_buckets() {
        let (engine, table) = setup();
        let node = engine.node(NodeId(0));
        for i in 0..100u32 {
            let mut tx = node.begin();
            table
                .put(&mut tx, &i.to_le_bytes(), &i.to_le_bytes())
                .unwrap();
            tx.commit().unwrap();
        }
        let mut tx = node.begin();
        for i in 0..100u32 {
            assert_eq!(
                table.get(&mut tx, &i.to_le_bytes()).unwrap(),
                Some(i.to_le_bytes().to_vec())
            );
        }
        tx.commit().unwrap();
        engine.shutdown();
    }
}
