//! # farm-index — transactional data structures on the FaRMv2 API
//!
//! FaRM applications build their indexes directly on the transactional
//! object store (Section 2 of the paper): a chained **hash table** for point
//! lookups and a **B-tree** for ordered access, with internal nodes cached at
//! every server and leaves always read uncached inside the transaction so
//! that strict serializability is preserved.
//!
//! This crate follows the same structure:
//!
//! * [`HashTable`] — a fixed-directory chained hash table whose buckets are
//!   FaRM objects. Every lookup reads the bucket object inside the calling
//!   transaction, so it is covered by opacity and validation.
//! * [`BTree`] — an ordered map whose *leaves* are FaRM objects (one object
//!   per key/value pair for large values, mirroring the YCSB setup in
//!   Section 5.3 where "B-Tree leaves were large enough to hold exactly one
//!   key-value pair"), and whose *internal* structure (the key → leaf
//!   directory) is cached in ordinary shared memory at each machine, exactly
//!   like FaRM's cached internal B-tree nodes. Leaf reads always go through
//!   the transaction; directory entries are only hints whose staleness is
//!   caught by the leaf read (the role fence keys play in the paper).
//!
//! Both structures expose `get` / `put` / `remove` (and `scan` for the
//! B-tree) operating on an explicit [`Transaction`], so multi-index
//! operations compose into one atomic transaction — which is how the TPC-C
//! workload uses them.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod btree;
pub mod codec;
pub mod hashtable;

pub use btree::BTree;
pub use hashtable::HashTable;

pub use farm_core::{Transaction, TxError};
