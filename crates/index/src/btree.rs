//! A transactional ordered map ("B-tree") with cached internal structure and
//! uncached, transactional leaf reads.
//!
//! The FaRM B-tree caches internal nodes at every server and always reads
//! leaves uncached within the transaction, adding them to the read set
//! (Section 2). We reproduce that split directly: the key → leaf directory
//! is an ordinary shared in-memory ordered map standing in for the cached
//! internal nodes, while each leaf is a FaRM object read and written through
//! the transaction. A stale directory hint is caught by the leaf read (the
//! leaf stores its own key), playing the role of the paper's fence keys.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use farm_core::{Addr, Engine, NodeId, Transaction, TxError};
use parking_lot::RwLock;

use crate::codec::{decode_entries, encode_entries};

/// A transactional ordered map keyed by `u64`.
#[derive(Debug, Clone)]
pub struct BTree {
    engine: Arc<Engine>,
    /// Cached "internal nodes": key → leaf address. Shared by all machines in
    /// this in-process reproduction, as the cache is kept consistent enough
    /// by construction (leaves are never moved; deletions remove the entry).
    directory: Arc<RwLock<BTreeMap<u64, Addr>>>,
    /// Round-robin cursor over regions for spreading leaves.
    creator: NodeId,
}

impl BTree {
    /// Creates an empty tree whose leaves will be allocated by transactions
    /// coordinated from any node; `creator` only seeds region placement.
    pub fn create(engine: &Arc<Engine>, creator: NodeId) -> BTree {
        BTree {
            engine: Arc::clone(engine),
            directory: Arc::new(RwLock::new(BTreeMap::new())),
            creator,
        }
    }

    /// Number of keys currently indexed.
    pub fn len(&self) -> usize {
        self.directory.read().len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.directory.read().is_empty()
    }

    fn region_for(&self, key: u64) -> farm_core::RegionId {
        let regions = self.engine.cluster().regions();
        regions[(key as usize) % regions.len()]
    }

    /// Looks up `key` within `tx`.
    pub fn get(&self, tx: &mut Transaction, key: u64) -> Result<Option<Vec<u8>>, TxError> {
        let leaf = { self.directory.read().get(&key).copied() };
        let Some(leaf) = leaf else { return Ok(None) };
        let data = tx.read(leaf)?;
        Ok(decode_entries(&data)
            .into_iter()
            .find(|(k, _)| k.as_slice() == key.to_be_bytes())
            .map(|(_, v)| v))
    }

    /// Looks up many keys within `tx` using one batched read
    /// ([`Transaction::read_many`]): all resolved leaves are fetched with one
    /// message per destination primary instead of one per key. Results are
    /// returned in input order; keys absent from the directory yield `None`.
    pub fn get_many(
        &self,
        tx: &mut Transaction,
        keys: &[u64],
    ) -> Result<Vec<Option<Vec<u8>>>, TxError> {
        let leaves: Vec<Option<Addr>> = {
            let dir = self.directory.read();
            keys.iter().map(|k| dir.get(k).copied()).collect()
        };
        let targets: Vec<Addr> = leaves.iter().filter_map(|l| *l).collect();
        let mut pages = tx.read_many(&targets)?.into_iter();
        let mut out = Vec::with_capacity(keys.len());
        for (key, leaf) in keys.iter().zip(&leaves) {
            out.push(match leaf {
                None => None,
                Some(_) => {
                    let data = pages.next().expect("one page per resolved leaf");
                    decode_entries(&data)
                        .into_iter()
                        .find(|(k, _)| k.as_slice() == key.to_be_bytes())
                        .map(|(_, v)| v)
                }
            });
        }
        Ok(out)
    }

    /// Inserts or updates `key` within `tx`.
    pub fn put(&self, tx: &mut Transaction, key: u64, value: &[u8]) -> Result<(), TxError> {
        let encoded = encode_entries(&[(key.to_be_bytes().to_vec(), value.to_vec())]);
        let existing = { self.directory.read().get(&key).copied() };
        match existing {
            Some(leaf) => {
                // Read first so the leaf is in the read set (uncached leaf
                // read), then overwrite.
                let _ = tx.read(leaf)?;
                tx.write(leaf, encoded)
            }
            None => {
                let region = self.region_for(key);
                let leaf = tx.alloc_in(region, encoded)?;
                // Publish the directory hint. If the transaction later
                // aborts, the hint points at an unallocated slot and is
                // repaired lazily by the next reader/writer.
                self.directory.write().insert(key, leaf);
                Ok(())
            }
        }
    }

    /// Removes `key` within `tx`, returning whether it was present.
    pub fn remove(&self, tx: &mut Transaction, key: u64) -> Result<bool, TxError> {
        let existing = { self.directory.read().get(&key).copied() };
        let Some(leaf) = existing else {
            return Ok(false);
        };
        tx.free(leaf)?;
        self.directory.write().remove(&key);
        Ok(true)
    }

    /// Reads up to `count` consecutive keys starting at the first key `>=
    /// start`, returning `(key, value)` pairs. Every leaf is read within
    /// `tx`, so the scan observes one consistent snapshot — the workload of
    /// Figure 15.
    pub fn scan(
        &self,
        tx: &mut Transaction,
        start: u64,
        count: usize,
    ) -> Result<Vec<(u64, Vec<u8>)>, TxError> {
        let targets: Vec<(u64, Addr)> = {
            let dir = self.directory.read();
            dir.range((Bound::Included(start), Bound::Unbounded))
                .take(count)
                .map(|(k, a)| (*k, *a))
                .collect()
        };
        // One batched read for the whole scan window: leaves are grouped by
        // destination primary and fetched with one message per machine.
        let leaves: Vec<Addr> = targets.iter().map(|&(_, a)| a).collect();
        let pages = tx.read_many(&leaves)?;
        let mut out = Vec::with_capacity(targets.len());
        for ((key, _leaf), data) in targets.into_iter().zip(pages) {
            if let Some((_, v)) = decode_entries(&data)
                .into_iter()
                .find(|(k, _)| k.as_slice() == key.to_be_bytes())
            {
                out.push((key, v));
            }
        }
        Ok(out)
    }

    /// The node used to seed placement (for documentation purposes).
    pub fn creator(&self) -> NodeId {
        self.creator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_core::EngineConfig;
    use farm_kernel::ClusterConfig;

    fn setup(cfg: EngineConfig) -> (Arc<Engine>, BTree) {
        let engine = Engine::start_cluster(ClusterConfig::test(3), cfg);
        let tree = BTree::create(&engine, NodeId(0));
        (engine, tree)
    }

    #[test]
    fn insert_get_scan_remove() {
        let (engine, tree) = setup(EngineConfig::default());
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        for k in [5u64, 1, 9, 3, 7] {
            tree.put(&mut tx, k, format!("v{k}").as_bytes()).unwrap();
        }
        tx.commit().unwrap();
        assert_eq!(tree.len(), 5);

        let mut tx = node.begin();
        assert_eq!(tree.get(&mut tx, 3).unwrap(), Some(b"v3".to_vec()));
        assert_eq!(tree.get(&mut tx, 4).unwrap(), None);
        let scanned = tree.scan(&mut tx, 3, 3).unwrap();
        assert_eq!(
            scanned,
            vec![
                (3, b"v3".to_vec()),
                (5, b"v5".to_vec()),
                (7, b"v7".to_vec())
            ]
        );
        tx.commit().unwrap();

        let mut tx = node.begin();
        assert!(tree.remove(&mut tx, 5).unwrap());
        assert!(!tree.remove(&mut tx, 5).unwrap());
        tx.commit().unwrap();
        let mut tx = node.begin();
        assert_eq!(tree.get(&mut tx, 5).unwrap(), None);
        let scanned = tree.scan(&mut tx, 0, 10).unwrap();
        assert_eq!(scanned.len(), 4);
        tx.commit().unwrap();
        engine.shutdown();
    }

    #[test]
    fn scan_sees_consistent_snapshot_under_multi_versioning() {
        let (engine, tree) = setup(EngineConfig::multi_version());
        let node = engine.node(NodeId(0));
        // Populate keys 0..20 with value "0".
        let mut tx = node.begin();
        for k in 0..20u64 {
            tree.put(&mut tx, k, b"0").unwrap();
        }
        tx.commit().unwrap();

        // Start a scanning transaction, then update half the keys from a
        // concurrent transaction; the scan must still see all-"0".
        let mut scanner = node.begin();
        let _ = tree.get(&mut scanner, 0).unwrap();
        let mut writer = node.begin();
        for k in 0..10u64 {
            tree.put(&mut writer, k, b"1").unwrap();
        }
        writer.commit().unwrap();
        let scanned = tree.scan(&mut scanner, 0, 20).unwrap();
        assert_eq!(scanned.len(), 20);
        assert!(
            scanned.iter().all(|(_, v)| v == b"0"),
            "scan must observe the snapshot from before the concurrent update"
        );
        scanner.commit().unwrap();
        engine.shutdown();
    }

    #[test]
    fn scan_in_single_version_mode_aborts_when_overwritten() {
        let (engine, tree) = setup(EngineConfig::default());
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        for k in 0..10u64 {
            tree.put(&mut tx, k, b"0").unwrap();
        }
        tx.commit().unwrap();

        let mut scanner = node.begin();
        let _ = tree.get(&mut scanner, 0).unwrap();
        let mut writer = node.begin();
        tree.put(&mut writer, 5, b"1").unwrap();
        writer.commit().unwrap();
        let err = tree.scan(&mut scanner, 0, 10).unwrap_err();
        assert!(
            err.is_retryable(),
            "single-version scan over updated keys must abort: {err:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn get_many_returns_hits_and_misses_in_input_order() {
        let (engine, tree) = setup(EngineConfig::default());
        let node = engine.node(NodeId(0));
        let mut tx = node.begin();
        for k in 0..10u64 {
            tree.put(&mut tx, k, format!("v{k}").as_bytes()).unwrap();
        }
        tx.commit().unwrap();

        let mut tx = node.begin();
        let got = tree.get_many(&mut tx, &[7, 99, 0, 3, 42]).unwrap();
        assert_eq!(
            got,
            vec![
                Some(b"v7".to_vec()),
                None,
                Some(b"v0".to_vec()),
                Some(b"v3".to_vec()),
                None,
            ]
        );
        // Batched and single-key lookups agree.
        for k in 0..10u64 {
            assert_eq!(
                tree.get_many(&mut tx, &[k]).unwrap()[0],
                tree.get(&mut tx, k).unwrap()
            );
        }
        tx.commit().unwrap();
        engine.shutdown();
    }

    #[test]
    fn keys_spread_across_nodes_are_readable_from_any_coordinator() {
        let (engine, tree) = setup(EngineConfig::default());
        let mut tx = engine.node(NodeId(0)).begin();
        for k in 0..30u64 {
            tree.put(&mut tx, k, &k.to_le_bytes()).unwrap();
        }
        tx.commit().unwrap();
        for n in 0..3u32 {
            let mut tx = engine.node(NodeId(n)).begin();
            for k in 0..30u64 {
                assert_eq!(
                    tree.get(&mut tx, k).unwrap(),
                    Some(k.to_le_bytes().to_vec())
                );
            }
            tx.commit().unwrap();
        }
        engine.shutdown();
    }
}
