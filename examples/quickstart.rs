//! Quickstart: start an in-process FaRMv2 cluster, run a few transactions,
//! and print what happened.
//!
//! Run with: `cargo run --example quickstart`

use farm_repro::{ClusterConfig, Engine, EngineConfig, NodeId};

fn main() {
    // A 3-machine cluster with 3-way replication; node 0 is the initial
    // configuration manager and clock master.
    let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::default());
    let node = engine.node(NodeId(0));

    // Allocate an object inside a transaction.
    let mut tx = node.begin();
    let addr = tx.alloc(b"hello, FaRMv2".as_slice()).expect("alloc");
    let info = tx.commit().expect("commit");
    println!("allocated {addr:?} at write timestamp {:?}", info.write_ts);

    // Read it back from a different machine: the read carries a global-time
    // read timestamp and sees a consistent snapshot.
    let reader = engine.node(NodeId(1));
    let mut tx = reader.begin();
    let value = tx.read(addr).expect("read");
    println!(
        "node 1 read: {:?} (read timestamp {})",
        String::from_utf8_lossy(&value),
        tx.read_ts()
    );
    tx.commit().expect("read-only commit is a no-op");

    // Update it, then show the aggregate statistics.
    let mut tx = node.begin();
    tx.write(addr, b"updated".as_slice()).expect("write");
    tx.commit().expect("commit");
    let stats = engine.aggregate_stats();
    println!(
        "committed {} read-write and {} read-only transactions, {} aborts",
        stats.commits_rw,
        stats.commits_ro,
        stats.aborts()
    );
    engine.shutdown();
    engine.cluster().shutdown();
}
