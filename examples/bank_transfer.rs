//! Bank-transfer example: concurrent transfers between accounts spread over
//! the cluster, demonstrating that strict serializability preserves the
//! total balance, and that opacity lets the audit read a consistent snapshot
//! while transfers are in flight.
//!
//! Run with: `cargo run --example bank_transfer`

use std::sync::Arc;

use farm_repro::{ClusterConfig, Engine, EngineConfig, NodeId};
use rand::Rng;

const ACCOUNTS: usize = 32;
const INITIAL: u64 = 1_000;

fn main() {
    let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
    let node0 = engine.node(NodeId(0));

    // Create the accounts.
    let mut tx = node0.begin();
    let accounts: Vec<_> = (0..ACCOUNTS)
        .map(|_| tx.alloc(INITIAL.to_le_bytes().to_vec()).expect("alloc"))
        .collect();
    tx.commit().expect("setup");
    let accounts = Arc::new(accounts);

    // Concurrent transfer threads, one per machine.
    let workers: Vec<_> = (0..3u32)
        .map(|n| {
            let engine = Arc::clone(&engine);
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                let node = engine.node(NodeId(n));
                let mut rng = rand::thread_rng();
                let mut committed = 0;
                while committed < 100 {
                    let from = accounts[rng.gen_range(0..ACCOUNTS)];
                    let to = accounts[rng.gen_range(0..ACCOUNTS)];
                    if from == to {
                        continue;
                    }
                    let amount = rng.gen_range(1..50u64);
                    let mut tx = node.begin();
                    let b_from = match tx.read(from) {
                        Ok(b) => u64::from_le_bytes(b[..8].try_into().unwrap()),
                        Err(_) => continue,
                    };
                    if b_from < amount {
                        continue;
                    }
                    let b_to = match tx.read(to) {
                        Ok(b) => u64::from_le_bytes(b[..8].try_into().unwrap()),
                        Err(_) => continue,
                    };
                    if tx
                        .write(from, (b_from - amount).to_le_bytes().to_vec())
                        .is_err()
                    {
                        continue;
                    }
                    if tx
                        .write(to, (b_to + amount).to_le_bytes().to_vec())
                        .is_err()
                    {
                        continue;
                    }
                    if tx.commit().is_ok() {
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();

    // While transfers run, audit the bank: thanks to opacity the audit sees a
    // consistent snapshot, so the total is always exact.
    let auditor = engine.node(NodeId(1));
    for round in 0..5 {
        let mut tx = auditor.begin();
        let mut total = 0u64;
        let mut ok = true;
        for &a in accounts.iter() {
            match tx.read(a) {
                Ok(b) => total += u64::from_le_bytes(b[..8].try_into().unwrap()),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            assert_eq!(
                total,
                ACCOUNTS as u64 * INITIAL,
                "audit saw an inconsistent snapshot!"
            );
            println!("audit {round}: total balance = {total} (consistent)");
        } else {
            println!("audit {round}: aborted (snapshot no longer available), retrying later");
        }
        let _ = tx.commit();
    }
    let committed: u64 = workers.into_iter().map(|w| w.join().unwrap() as u64).sum();
    println!("{committed} transfers committed");

    // Final audit.
    let mut tx = auditor.begin();
    let total: u64 = accounts
        .iter()
        .map(|&a| u64::from_le_bytes(tx.read(a).unwrap()[..8].try_into().unwrap()))
        .sum();
    println!("final total = {total}");
    assert_eq!(total, ACCOUNTS as u64 * INITIAL);
    tx.commit().unwrap();
    engine.shutdown();
    engine.cluster().shutdown();
}
