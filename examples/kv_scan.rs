//! Key-value store with range scans over the transactional B-tree,
//! contrasting single-version and multi-version behaviour: a long scan
//! running concurrently with updates aborts in single-version mode but
//! completes against a consistent snapshot with multi-versioning.
//!
//! Run with: `cargo run --example kv_scan`

use farm_repro::index::BTree;
use farm_repro::{ClusterConfig, Engine, EngineConfig, NodeId};

fn run(multi_version: bool) {
    let cfg = if multi_version {
        EngineConfig::multi_version()
    } else {
        EngineConfig::default()
    };
    let engine = Engine::start_cluster(ClusterConfig::test(3), cfg);
    let node = engine.node(NodeId(0));
    let tree = BTree::create(&engine, NodeId(0));
    let mut tx = node.begin();
    for k in 0..200u64 {
        tree.put(&mut tx, k, format!("value-{k}").as_bytes())
            .unwrap();
    }
    tx.commit().unwrap();

    // Start a scanning transaction, pin its snapshot with one read, then
    // update some keys concurrently.
    let mut scanner = engine.node(NodeId(1)).begin();
    let _ = tree.get(&mut scanner, 0).unwrap();
    let mut writer = node.begin();
    for k in 50..60u64 {
        tree.put(&mut writer, k, b"overwritten").unwrap();
    }
    writer.commit().unwrap();

    match tree.scan(&mut scanner, 0, 200) {
        Ok(rows) => println!(
            "multi_version={multi_version}: scan completed with {} rows, all from the snapshot: {}",
            rows.len(),
            rows.iter()
                .all(|(k, v)| v == format!("value-{k}").as_bytes())
        ),
        Err(e) => println!("multi_version={multi_version}: scan aborted ({e})"),
    }
    let _ = scanner.commit();
    engine.shutdown();
    engine.cluster().shutdown();
}

fn main() {
    run(false);
    run(true);
}
