//! A1-style property graph on FaRMv2 (Section 6 of the paper): vertices and
//! edges are FaRM objects linked by addresses; updates that touch several
//! machines (add an edge: two edge lists plus the edge data) are a single
//! distributed transaction, and queries use a parallel distributed read-only
//! transaction at one snapshot.
//!
//! Run with: `cargo run --example graph_a1`

use farm_repro::core_engine::ParallelQuery;
use farm_repro::index::HashTable;
use farm_repro::{ClusterConfig, Engine, EngineConfig, NodeId};

fn main() {
    let engine = Engine::start_cluster(ClusterConfig::test(3), EngineConfig::multi_version());
    let node = engine.node(NodeId(0));

    // Primary index: vertex name -> vertex object address (packed u64).
    let index = HashTable::create(&engine, NodeId(0), 64).expect("index");

    // Create two vertices ("players") and an edge ("sacked") in one
    // transaction, exactly like the paper's example.
    let mut tx = node.begin();
    let jones = tx.alloc(b"vertex:Chandler Jones".as_slice()).unwrap();
    let wilson = tx.alloc(b"vertex:Russell Wilson".as_slice()).unwrap();
    let edge = tx.alloc(b"edge:sacked:2019-10-03".as_slice()).unwrap();
    // Outgoing / incoming edge lists: store the edge + peer addresses.
    let out_list = tx
        .alloc([edge.pack().to_le_bytes(), wilson.pack().to_le_bytes()].concat())
        .unwrap();
    let in_list = tx
        .alloc([edge.pack().to_le_bytes(), jones.pack().to_le_bytes()].concat())
        .unwrap();
    index
        .put(
            &mut tx,
            b"Chandler Jones",
            &[jones.pack().to_le_bytes(), out_list.pack().to_le_bytes()].concat(),
        )
        .unwrap();
    index
        .put(
            &mut tx,
            b"Russell Wilson",
            &[wilson.pack().to_le_bytes(), in_list.pack().to_le_bytes()].concat(),
        )
        .unwrap();
    tx.commit().expect("graph update");
    println!("created 2 vertices, 1 edge, 2 edge lists and 2 index entries in one transaction");

    // Query: traverse from Chandler Jones to whoever he sacked, using a
    // parallel distributed read-only snapshot.
    let query = ParallelQuery::start(&engine, NodeId(1));
    let results = query
        .map_nodes(&[NodeId(1)], |_node, tx| {
            let entry = index.get(tx, b"Chandler Jones")?.expect("indexed");
            let out_addr = farm_repro::core_engine::Addr::unpack(u64::from_le_bytes(
                entry[8..16].try_into().unwrap(),
            ));
            let out = tx.read(out_addr)?;
            let peer = farm_repro::core_engine::Addr::unpack(u64::from_le_bytes(
                out[8..16].try_into().unwrap(),
            ));
            let peer_data = tx.read(peer)?;
            Ok(String::from_utf8_lossy(&peer_data).into_owned())
        })
        .expect("query");
    println!("Chandler Jones --sacked--> {}", results[0]);
    query.finish();
    engine.shutdown();
    engine.cluster().shutdown();
}
