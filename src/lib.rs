//! # farm-repro — workspace root of the FaRMv2 reproduction
//!
//! This crate re-exports the public surface of the sub-crates so the
//! examples and integration tests have a single dependency, and so
//! downstream users can depend on one crate.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the reproduction of every table and figure.

pub use farm_clock as clock;
pub use farm_core as core_engine;
pub use farm_disklog as disklog;
pub use farm_index as index;
pub use farm_kernel as kernel;
pub use farm_memory as memory;
pub use farm_net as net;
pub use farm_workloads as workloads;

pub use farm_core::{
    AbortReason, Engine, EngineConfig, EngineMode, MvPolicy, NodeId, Transaction, TxError,
    TxOptions,
};
pub use farm_kernel::ClusterConfig;
